package cpu

// The corner-batched lane-parallel sweep kernel: one walk of an
// annotated stream advancing all fifteen way allocations of all three
// simulated frequency corners at once.
//
// A single timing walk is latency-bound on its serial
// dispatch→ready→completion float chain, so independent chains advanced
// in lockstep hide nearly all of that latency. This file restructures
// the walk as a batched kernel over structure-of-arrays per-lane state:
// every quantity that varies by lane — time cursors, retirement
// frontiers, DRAM queue and MLP-window state, per-stall-class
// accumulators — is a laneRow (a flat [45]float64 spanning three
// fifteen-way corner bands), and each instruction runs one straight-line
// loop over the lanes of the specialisation that matches its kind.
// Completion times are written into the ring rows in place (each lane
// reads its slot before overwriting it, like the reference's scalar
// ring), so no per-lane state is copied between instructions.
//
// Three structural savings come from the annotation being
// setting-independent:
//
//   - Corner batching: the per-instruction fixed work — kernel-class
//     dispatch, dependence ring-row resolution, split scanning, ring
//     index bookkeeping — does not depend on the frequency, so walking
//     the three corners of a core size together pays it once instead of
//     three times, and the three corners' independent float chains give
//     the out-of-order hardware running this model more latency to hide.
//     Frequency enters only through per-group constants (cycle time,
//     dispatch step, L3/branch-penalty latencies), kept in group-indexed
//     rows.
//
//   - Dynamic lane grouping: an access at recency position pos splits
//     the lanes of a corner band into a miss prefix (fewer than pos
//     ways) and a hit suffix, and that is the only way two lanes of one
//     corner can ever diverge. The walk therefore partitions lanes into
//     groups of indistinguishable allocations, starting from one group
//     per corner and splitting a group — duplicating its state column —
//     only at the instant an access boundary falls inside its interval.
//     The boundary position is corner-invariant, so the three bands
//     split at the same instants and the partition stays one walk.
//     Every instruction advances one representative chain per group;
//     compute-bound phases walk three chains instead of forty-five.
//
//   - Shared events: all runs of one stream observe the same LLC event
//     set in program order (LLCEvents); only the delivery order varies
//     with the setting. The walk records one issue-time row per event (a
//     single laneRow store) and the delivery order of lane l is
//     recovered afterwards as an argsort of column l — an LSD radix sort
//     over the raw IEEE-754 bits of the issue times (non-negative, so
//     bit order equals numeric order) that skips the passes whose key
//     byte is constant across the column, with the ordinal payload
//     riding along and ties resolved by the scatter's stability.
//     Columns matching their neighbour's share one permutation slice
//     (callers detect sharing by pointer equality and skip duplicate
//     replays without comparing contents).

import (
	"math"

	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// numWays is the number of tracked way allocations (MinWays..MaxWays).
const numWays = config.MaxWays - config.MinWays + 1

// NumCorners is the number of frequency corners one RunCorners walk
// batches.
const NumCorners = 3

// numLanes is the lane count of one corner-batched walk: one band of
// numWays way lanes per frequency corner.
const numLanes = NumCorners * numWays

// laneRow is one structure-of-arrays slot of the sweep walk: a value
// per lane group (the walk's groups never outnumber the lanes).
type laneRow = [numLanes]float64

// zeroRow stands in for absent dispatch constraints (its values never
// change), letting the lane kernels avoid per-lane presence branches.
var zeroRow laneRow

// LLCEvents returns the stream's LLC accesses in program order with
// their instruction indices and load/store kinds. The event set is
// fixed by the annotation — every timing run of this stream observes
// exactly these events, only their delivery order varies with the
// setting — so one shared list serves all runs; a run's delivery order
// is the permutation RunCorners returns. IssueNs is zero in the shared
// list. Computed once, safe for concurrent use; callers must not
// mutate the result.
func (a *Annotated) LLCEvents() []LLCEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.llcEvents == nil {
		evs := make([]LLCEvent, 0, a.L2Misses)
		for i := range a.Insts {
			if a.Level[i] == 3 {
				evs = append(evs, LLCEvent{
					InstIdx: int64(i),
					Addr:    a.Insts[i].Addr,
					IsLoad:  a.Insts[i].Kind == trace.KindLoad,
				})
			}
		}
		a.llcEvents = evs
	}
	return a.llcEvents
}

// permKey is one sort key of the delivery-order argsort: the raw bits
// of an issue time (times are finite and non-negative, so uint64 order
// equals float64 order) and the event's program-order ordinal.
type permKey struct {
	t uint64
	e int32
}

// SweepScratch is reusable working memory for RunCorners: the
// issue-time matrix, the per-lane delivery permutations, the radix-sort
// buffers and the per-corner result rows. One scratch serves any number
// of sequential RunCorners calls; the results and permutations each
// call returns alias the scratch and are valid until the next call.
type SweepScratch struct {
	issue  []laneRow // one row per LLC event: per-group issue times
	flat   []int32   // backing store for the returned permutations
	perms  [numLanes][]int32
	wperms [NumCorners][numWays][]int32 // per way lane, mapped from group perms
	keys   []permKey
	buf    []permKey
	rings  []laneRow            // zeroed backing store for the walk's ring buffers
	res    [numLanes]Result     // backing store for the returned results
	out    [NumCorners][]Result // per-corner views over res
}

// ringRows returns a zeroed slice of n ring rows, reusing the scratch
// backing store across calls.
func (s *SweepScratch) ringRows(n int) []laneRow {
	if cap(s.rings) < n {
		s.rings = make([]laneRow, n)
		return s.rings[:n]
	}
	r := s.rings[:n]
	for i := range r {
		r[i] = laneRow{}
	}
	return r
}

// issueRows returns the issue matrix with one row per event.
func (s *SweepScratch) issueRows(nEv int) []laneRow {
	if cap(s.issue) < nEv {
		s.issue = make([]laneRow, nEv)
	}
	return s.issue[:nEv]
}

// sortLanes converts the filled issue matrix into per-group delivery
// permutations: perms[g] lists event ordinals in the stable order of
// group g's issue times — exactly the order Run's ATD feed delivers.
// Only the walked groups are sorted; a group whose issue column matches
// its neighbour's shares one permutation slice (callers detect sharing
// by pointer equality and skip duplicate replays without comparing
// contents).
func (s *SweepScratch) sortLanes(issue []laneRow, walked int) [][]int32 {
	nEv := len(issue)
	if cap(s.flat) < walked*nEv {
		s.flat = make([]int32, walked*nEv)
	}
	if cap(s.keys) < nEv {
		s.keys = make([]permKey, nEv)
	}
	keys := s.keys[:nEv]
	for l := 0; l < walked; l++ {
		if l > 0 && laneColsEqual(issue, l) {
			s.perms[l] = s.perms[l-1]
			continue
		}
		// Seed in program order: both sorts below are stable in it, so
		// equal issue times keep their input order and the result is
		// the unique (time, ordinal) permutation — the reference feed's
		// stable-by-time delivery contract.
		for e := range issue {
			keys[e] = permKey{math.Float64bits(issue[e][l]), int32(e)}
		}
		// Issue times arrive almost in program order already — the
		// dispatch cursor is nearly monotone, so measured columns show
		// a few dozen descents of single-digit displacement per
		// hundreds of events. A budgeted insertion repair sorts such a
		// column in about one pass; a column that blows the budget is
		// re-seeded (the repair has reordered it, which would corrupt
		// the tie contract) and takes the radix path.
		if !insertionRepairKeys(keys, 4*nEv) {
			for e := range issue {
				keys[e] = permKey{math.Float64bits(issue[e][l]), int32(e)}
			}
			radixSortKeys(keys, &s.buf)
		}
		p := s.flat[l*nEv : l*nEv+nEv : l*nEv+nEv]
		for e := range keys {
			p[e] = keys[e].e
		}
		s.perms[l] = p
	}
	return s.perms[:walked]
}

// laneColsEqual reports whether group l's issue column equals group
// l-1's.
func laneColsEqual(issue []laneRow, l int) bool {
	for e := range issue {
		if issue[e][l] != issue[e][l-1] {
			return false
		}
	}
	return true
}

// radixSortKeys sorts keys in the (time, ordinal) total order with an
// LSD radix sort over the 64-bit time key: one histogram pass counts
// all eight byte positions at once, then one stable counting-scatter
// pass runs per byte position that actually varies across the column —
// issue times of one phase share their high exponent bytes, so most of
// the upper passes are skipped. Callers seed the keys in ordinal
// (program) order; the scatter's stability then lands equal-time events
// in program order, which is exactly the reference feed's delivery
// contract. Small columns fall back to insertion sort, where the
// ordinal breaks ties explicitly.
func radixSortKeys(k []permKey, bufp *[]permKey) {
	n := len(k)
	if n < 2 {
		return
	}
	if n <= 48 {
		insertionSortKeys(k)
		return
	}
	var hist [8][256]int32
	for i := range k {
		v := k[i].t
		hist[0][v&0xff]++
		hist[1][v>>8&0xff]++
		hist[2][v>>16&0xff]++
		hist[3][v>>24&0xff]++
		hist[4][v>>32&0xff]++
		hist[5][v>>40&0xff]++
		hist[6][v>>48&0xff]++
		hist[7][v>>56&0xff]++
	}
	if cap(*bufp) < n {
		*bufp = make([]permKey, n)
	}
	src, dst := k, (*bufp)[:n]
	for b := uint(0); b < 8; b++ {
		h := &hist[b]
		if h[src[0].t>>(b*8)&0xff] == int32(n) {
			continue // this byte is constant across the column
		}
		var off [256]int32
		var sum int32
		for v := 0; v < 256; v++ {
			off[v] = sum
			sum += h[v]
		}
		sh := b * 8
		for i := range src {
			v := src[i].t >> sh & 0xff
			dst[off[v]] = src[i]
			off[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &k[0] {
		copy(k, src)
	}
}

func insertionSortKeys(k []permKey) {
	for i := 1; i < len(k); i++ {
		for j := i; j > 0 && keyLess(k[j], k[j-1]); j-- {
			k[j], k[j-1] = k[j-1], k[j]
		}
	}
}

// insertionRepairKeys sorts k in keyLess order by insertion with a total
// element-shift budget — O(n + inversions), so a nearly-sorted column
// costs about one scan. It returns false once the shifts exceed the
// budget, leaving k as some permutation of the input; the caller must
// then re-seed and take the radix path.
func insertionRepairKeys(k []permKey, budget int) bool {
	for i := 1; i < len(k); i++ {
		if !keyLess(k[i], k[i-1]) {
			continue
		}
		v := k[i]
		j := i - 1
		for ; j >= 0 && keyLess(v, k[j]); j-- {
			k[j+1] = k[j]
			budget--
		}
		k[j+1] = v
		if budget < 0 {
			return false
		}
	}
	return true
}

// keyLess is the (time, ordinal) total order. Ordinals are unique, so
// the sorted sequence is unique — equal-time events land in program
// order regardless of input order, which is exactly the stable-by-time
// contract of the reference feed.
func keyLess(a, b permKey) bool {
	return a.t < b.t || (a.t == b.t && a.e < b.e)
}

// Kernel classes of the sweep walk, precomputed per instruction by
// sweepMeta. The class folds every setting-independent decode decision
// — kind, hit level, producer presence — into one byte, so the walk's
// per-instruction dispatch is a single jump instead of a chain of
// data-dependent branches.
const (
	clsBase          = iota // no producers, no memory slot (ALU/Mul/predicted branch)
	clsBaseMem              // no producers, memory slot (L1 load, non-LLC store)
	clsBaseDep1             // one producer, no memory slot
	clsBaseDep              // two producers, no memory slot
	clsBaseDep1Mem          // one producer, memory slot
	clsBaseDepMem           // two producers, memory slot
	clsL2Load               // L2-hit load: cache-class stall
	clsLLCLoad              // reaches the LLC: miss/hit group split
	clsStoreLLC             // store reaching the LLC, no producers
	clsStoreLLCDep          // store reaching the LLC, producers
	clsBranchMiss           // mispredicted branch, no producers
	clsBranchMissDep        // mispredicted branch, producers
)

// sweepMeta returns the per-instruction kernel class and execution
// latency in cycles — both setting-independent — computed once per
// stream and shared by every walk.
func (a *Annotated) sweepMeta() ([]uint8, []uint8) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.classes == nil {
		cls := make([]uint8, len(a.Insts))
		lat := make([]uint8, len(a.Insts))
		for i, in := range a.Insts {
			hasDep := in.Dep1 > 0 || in.Dep2 > 0
			// Two-producer kernels pay a wider readiness reduction, so
			// instructions with a single producer get their own class.
			clsDep, clsDepMem := uint8(clsBaseDep), uint8(clsBaseDepMem)
			if in.Dep2 == 0 {
				clsDep, clsDepMem = clsBaseDep1, clsBaseDep1Mem
			}
			c, lc := uint8(clsBase), uint8(1)
			switch in.Kind {
			case trace.KindMul:
				lc = trace.MulLatencyCycles
				if hasDep {
					c = clsDep
				}
			case trace.KindBranch:
				switch {
				case in.Mispredict && hasDep:
					c = clsBranchMissDep
				case in.Mispredict:
					c = clsBranchMiss
				case hasDep:
					c = clsDep
				}
			case trace.KindStore:
				switch {
				case a.Level[i] == 3 && hasDep:
					c = clsStoreLLCDep
				case a.Level[i] == 3:
					c = clsStoreLLC
				case hasDep:
					c = clsDepMem
				default:
					c = clsBaseMem
				}
			case trace.KindLoad:
				switch a.Level[i] {
				case 1:
					lc = config.L1LatencyCycles
					c = clsBaseMem
					if hasDep {
						c = clsDepMem
					}
				case 2:
					lc = config.L2LatencyCycles
					c = clsL2Load
				default:
					c = clsLLCLoad
				}
			default: // ALU
				if hasDep {
					c = clsDep
				}
			}
			cls[i] = c
			lat[i] = lc
		}
		a.classes, a.latCyc = cls, lat
	}
	return a.classes, a.latCyc
}

// sweepState is the per-group structure-of-arrays state of one walk:
// time cursors, the MLP window, outstanding-miss (DRAM queue) state,
// the CPI-stack accumulators, the per-group frequency constants and the
// group partition itself.
type sweepState struct {
	dispatch      laneRow
	frontEndReady laneRow
	frontier      laneRow
	lastDRAMStart laneRow
	lastMissEnd   laneRow
	baseNs        laneRow
	branchNs      laneRow
	cacheNs       laneRow
	memNs         laneRow
	leading       [numLanes]int64

	// Frequency constants of the group's corner, copied on split so the
	// kernels index one row instead of resolving the corner: ns per
	// cycle, dispatch step, L3 latency and branch-refill penalty in ns.
	pc   laneRow
	step laneRow
	l3   laneRow
	pen  laneRow

	// Group g covers lanes [lo[g], up[g]) inside the corner band
	// starting at lane base[g]; groups are stored in creation order and
	// splits only refine the partition.
	lo, up, base [numLanes]int
	nG           int
}

// split duplicates group g's state column into a new group covering
// [laneB, up[g]) — the instant an access's miss/hit boundary first falls
// inside g's interval, its halves become distinguishable and each
// continues as an independent chain with bit-identical history.
func (st *sweepState) split(g, laneB, ev int, done, start, memRing, issue []laneRow) {
	n := st.nG
	for r := range done {
		done[r][n] = done[r][g]
	}
	for r := range start {
		start[r][n] = start[r][g]
	}
	for r := range memRing {
		memRing[r][n] = memRing[r][g]
	}
	st.dispatch[n] = st.dispatch[g]
	st.frontEndReady[n] = st.frontEndReady[g]
	st.frontier[n] = st.frontier[g]
	st.lastDRAMStart[n] = st.lastDRAMStart[g]
	st.lastMissEnd[n] = st.lastMissEnd[g]
	st.baseNs[n] = st.baseNs[g]
	st.branchNs[n] = st.branchNs[g]
	st.cacheNs[n] = st.cacheNs[g]
	st.memNs[n] = st.memNs[g]
	st.leading[n] = st.leading[g]
	st.pc[n] = st.pc[g]
	st.step[n] = st.step[g]
	st.l3[n] = st.l3[g]
	st.pen[n] = st.pen[g]
	for e := 0; e < ev; e++ {
		issue[e][n] = issue[e][g]
	}
	st.lo[n], st.up[n], st.base[n] = laneB, st.up[g], st.base[g]
	st.up[g] = laneB
	st.nG = n + 1
}

// depRowOf resolves one producer distance to its completion-time ring
// row, or the zero row when the producer is absent, beyond the reorder
// window, or before the stream start — the reference's validity rule.
func depRowOf(done []laneRow, ringMask, ri, robSize, i int, dep int32) *laneRow {
	if d := int(dep); d > 0 && d <= robSize && d <= i {
		j := ri - d
		if j < 0 {
			j += robSize
		}
		return &done[j&ringMask]
	}
	return &zeroRow
}

// RunCorners executes the annotated stream at one core size for every
// (frequency corner, way allocation) of freqs × MinWays..MaxWays in a
// single corner-batched walk, returning per corner the per-allocation
// results indexed by w-MinWays. When the stream has LLC traffic it also
// returns each lane's delivery permutation over the shared LLCEvents
// list — replaying LLCEvents in that order into a warm ATD clone (or
// fork) reproduces Run's ATD state exactly; perms is the zero value
// otherwise. The results and permutations alias scratch (which must be
// non-nil) and are valid until its next use; lanes with identical
// delivery orders share one permutation slice.
//
// Lanes are walked as dynamically refined groups: the walk starts with
// one group per frequency corner spanning that corner's every
// allocation (all of a corner's lanes are indistinguishable until an
// LLC access tells them apart) and splits a group only when an access's
// miss/hit boundary falls strictly inside its way interval, duplicating
// the group's state column at that instant. A group's representative
// performs exactly the float operations each of its member lanes would,
// so results remain bit-identical to forty-five separate Run calls
// (enforced by TestRunCornersMatchesReference) while the average
// instruction advances far fewer than forty-five chains.
func RunCorners(a *Annotated, core config.CoreSize, freqs [NumCorners]float64, scratch *SweepScratch) ([NumCorners][]Result, [NumCorners][][]int32) {
	cp := config.Core(core)

	n := len(a.Insts)
	classes, latCyc := a.sweepMeta()

	// Ring buffers over the reorder window, padded to powers of two so
	// the masked indexing below stays in bounds without checks. Only
	// slots < robSize (resp. < LSQ) are ever touched, so the semantics
	// match the reference's exactly-sized rings. Each ring slot is a
	// laneRow indexed by group; a group reads its slot entry before
	// overwriting it within one instruction, exactly as the reference's
	// scalar ring does.
	robSize := cp.ROB
	ringLen := 1
	for ringLen < robSize {
		ringLen <<= 1
	}
	ringMask := ringLen - 1
	lsq := cp.LSQ
	memLen := 1
	for memLen < lsq {
		memLen <<= 1
	}
	memMask := memLen - 1
	rows := scratch.ringRows(2*ringLen + memLen)
	done, start, memRing := rows[:ringLen:ringLen], rows[ringLen:2*ringLen:2*ringLen], rows[2*ringLen:]
	mi := 0 // memCount % LSQ, maintained by wraparound

	var st sweepState
	st.nG = NumCorners
	for k := 0; k < NumCorners; k++ {
		perCycle := 1.0 / freqs[k] // ns per cycle
		st.lo[k], st.up[k], st.base[k] = k*numWays, (k+1)*numWays, k*numWays
		st.pc[k] = perCycle
		st.step[k] = perCycle / float64(cp.IssueWidth)
		st.l3[k] = config.L3LatencyCycles * perCycle
		st.pen[k] = config.BranchPenaltyCycles * perCycle
	}
	// Aliases keep the kernels free of st. noise; laneRow pointers
	// auto-indirect on indexing.
	dispatch := &st.dispatch
	frontEndReady := &st.frontEndReady
	frontier := &st.frontier
	lastDRAMStart := &st.lastDRAMStart
	lastMissEnd := &st.lastMissEnd
	baseNs := &st.baseNs
	branchNs := &st.branchNs
	cacheNs := &st.cacheNs
	memNs := &st.memNs
	leading := &st.leading
	pc := &st.pc
	step := &st.step
	l3 := &st.l3
	pen := &st.pen

	feed := a.L2Misses > 0
	var issue []laneRow
	if feed {
		issue = scratch.issueRows(int(a.L2Misses))
	}
	ev := 0

	rs := cp.RS
	hasRS := rs < robSize
	ri := 0 // i % robSize, maintained by wraparound

	for i := 0; i < n; i++ {
		// --- Shared per-instruction state: ring rows and the
		// reservation-station constraint (everything else is resolved
		// inside the class kernels that need it) ---
		row := &done[ri&ringMask]
		srow := &start[ri&ringMask]
		rsRow := &zeroRow
		if hasRS && i >= rs {
			j := ri - rs
			if j < 0 {
				j += robSize
			}
			rsRow = &start[j&ringMask]
		}
		nG := st.nG

		switch classes[i] {
		case clsBase:
			latf := float64(latCyc[i])
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := d + pc[l]
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseDep1:
			latf := float64(latCyc[i])
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, a.Insts[i].Dep1)
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l])
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseDep:
			latf := float64(latCyc[i])
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseMem:
			latf := float64(latCyc[i])
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := d + pc[l]
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsBaseDep1Mem:
			latf := float64(latCyc[i])
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, a.Insts[i].Dep1)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l])
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsBaseDepMem:
			latf := float64(latCyc[i])
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsL2Load:
			// L2-hit load: fixed latency, every stall is cache-class
			// (it wins over branch attribution).
			latf := float64(latCyc[i])
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				d := d1
				if v := frontEndReady[l]; v > d {
					d = v
				}
				if v := rsRow[l]; v > d {
					d = v
				}
				if v := memRow[l]; v > d {
					d = v
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + latf*pc[l]
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					cacheNs[l] += fin - fr
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsLLCLoad:
			// LLC load: miss groups stall on memory (DRAM queue + MLP
			// window), hit groups on the LLC. The boundary split keeps
			// every group uniformly one or the other; the boundary
			// position is corner-invariant, so one scan splits every
			// corner band that straddles it.
			posB := llcBoundary(int(a.LLCPos[i]))
			if posB > 0 && posB < numWays {
				for g, n0 := 0, nG; g < n0; g++ {
					if bb := st.base[g] + posB; st.lo[g] < bb && bb < st.up[g] {
						st.split(g, bb, ev, done, start, memRing, issue)
					}
				}
				nG = st.nG
			}
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			lo := &st.lo
			base := &st.base
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				d := d1
				if v := frontEndReady[l]; v > d {
					d = v
				}
				if v := rsRow[l]; v > d {
					d = v
				}
				if v := memRow[l]; v > d {
					d = v
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if lo[l] < base[l]+posB {
					reqNs := ready + l3[l]
					sStart := reqNs
					if v := lastDRAMStart[l] + config.DRAMServiceNs; v > sStart {
						sStart = v
					}
					lastDRAMStart[l] = sStart
					fin := sStart + config.DRAMLatencyNs
					// Leading-loads ground truth: a miss is leading when
					// it is not issued within the DRAM latency window of
					// a previous miss; queueing delay lengthens
					// completion but not the overlap window.
					if reqNs >= lastMissEnd[l] {
						leading[l]++
					}
					if end := reqNs + config.DRAMLatencyNs; end > lastMissEnd[l] {
						lastMissEnd[l] = end
					}
					row[l] = fin
					memRow[l] = fin
					if fin > fr {
						frontier[l] = fin
						memNs[l] += fin - fr
					} else {
						frontier[l] = fr
					}
				} else {
					fin := ready + l3[l]
					row[l] = fin
					memRow[l] = fin
					if fin > fr {
						frontier[l] = fin
						cacheNs[l] += fin - fr
					} else {
						frontier[l] = fr
					}
				}
			}
			if feed {
				issue[ev] = *srow
				ev++
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsStoreLLC, clsStoreLLCDep:
			// Store reaching the LLC: retires into the write buffer
			// after one cycle; a miss additionally consumes DRAM
			// bandwidth without stalling the pipeline.
			posB := llcBoundary(int(a.LLCPos[i]))
			if posB > 0 && posB < numWays {
				for g, n0 := 0, nG; g < n0; g++ {
					if bb := st.base[g] + posB; st.lo[g] < bb && bb < st.up[g] {
						st.split(g, bb, ev, done, start, memRing, issue)
					}
				}
				nG = st.nG
			}
			dep1Row, dep2Row := &zeroRow, &zeroRow
			if classes[i] == clsStoreLLCDep {
				in := &a.Insts[i]
				dep1Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
				dep2Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			}
			memRow := &memRing[mi&memMask]
			lo := &st.lo
			base := &st.base
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + pc[l]
				row[l] = fin
				memRow[l] = fin
				if lo[l] < base[l]+posB {
					reqNs := ready + l3[l]
					sStart := reqNs
					if v := lastDRAMStart[l] + config.DRAMServiceNs; v > sStart {
						sStart = v
					}
					lastDRAMStart[l] = sStart
				}
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			if feed {
				issue[ev] = *srow
				ev++
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		default: // clsBranchMiss, clsBranchMissDep
			// Mispredicted branch: the base kernel plus the front-end
			// refill that gates later dispatch.
			dep1Row, dep2Row := &zeroRow, &zeroRow
			if classes[i] == clsBranchMissDep {
				in := &a.Insts[i]
				dep1Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
				dep2Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			}
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + step[l]
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+pc[l], dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + pc[l]
				row[l] = fin
				fr := frontier[l] + step[l]
				baseNs[l] += step[l]
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
				if r := fin + pen[l]; r > frontEndReady[l] {
					frontEndReady[l] = r
				}
			}
		}

		ri++
		if ri == robSize {
			ri = 0
		}
	}

	// Expand the group representatives to their member lanes: timing and
	// leading-miss state are group values, the cache counters come from
	// the shared per-allocation profile and are exact per lane.
	var groupOf [numLanes]int
	for g := 0; g < st.nG; g++ {
		for l := st.lo[g]; l < st.up[g]; l++ {
			groupOf[l] = g
		}
	}
	var results [NumCorners][]Result
	for k := 0; k < NumCorners; k++ {
		out := scratch.res[k*numWays : (k+1)*numWays : (k+1)*numWays]
		for wl := 0; wl < numWays; wl++ {
			g := groupOf[k*numWays+wl]
			pr := a.waysProfile(config.MinWays + wl)
			mlp := 1.0
			if st.leading[g] > 0 {
				mlp = float64(pr.dramLoads) / float64(st.leading[g])
			}
			out[wl] = Result{
				Instructions:  int64(n),
				TimeNs:        st.frontier[g],
				BaseNs:        st.baseNs[g],
				BranchNs:      st.branchNs[g],
				CacheNs:       st.cacheNs[g],
				MemNs:         st.memNs[g],
				L1Misses:      a.L1Misses,
				LLCAccesses:   pr.llcAccesses,
				LLCHits:       pr.llcHits,
				LLCMisses:     pr.llcMisses,
				DRAMLoads:     pr.dramLoads,
				Writebacks:    pr.writebacks,
				Mispredicts:   pr.mispredicts,
				LeadingMisses: st.leading[g],
				MLP:           mlp,
			}
		}
		results[k] = out
		scratch.out[k] = out
	}

	var perms [NumCorners][][]int32
	if feed {
		gperms := scratch.sortLanes(issue, st.nG)
		for k := 0; k < NumCorners; k++ {
			for wl := 0; wl < numWays; wl++ {
				scratch.wperms[k][wl] = gperms[groupOf[k*numWays+wl]]
			}
			perms[k] = scratch.wperms[k][:]
		}
	}
	return results, perms
}

// llcBoundary converts an LLC recency position into the way-lane miss
// boundary: lanes below it (fewer than pos ways) miss. Position 0 means
// the line was absent from every tracked way, so every lane misses.
func llcBoundary(pos int) int {
	if pos == 0 {
		return numWays
	}
	b := pos - config.MinWays // pos ≤ MaxWays keeps this ≤ numWays-1
	if b < 0 {
		b = 0
	}
	return b
}
