package db

import (
	"fmt"
	"math/rand"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// randomParams draws a Validate-accepted parameter set spanning the
// geometries the corner-batched kernel specialises on: compute-bound
// streams with no LLC traffic at all (the no-split fast path), small
// hot sets that never miss past the warmup, cache-sensitive footprints
// around the allocation range (maximum lane splitting), and streaming
// footprints far beyond it.
func randomParams(rng *rand.Rand) trace.Params {
	p := trace.Params{
		Seed:           rng.Int63(),
		LoadFrac:       0.05 + 0.30*rng.Float64(),
		StoreFrac:      0.02 + 0.10*rng.Float64(),
		BranchFrac:     0.05 + 0.15*rng.Float64(),
		MulFrac:        rng.Float64() * 0.5,
		BranchMissRate: rng.Float64() * 0.1,
		DepProb:        rng.Float64() * 0.8,
		DepMean:        1 + rng.Float64()*20,
		BurstProb:      rng.Float64() * 0.2,
		BurstLen:       1 + rng.Intn(12),
		BurstSpread:    1 + rng.Intn(8),
		ChaseFrac:      rng.Float64() * 0.5,
		StoreMainFrac:  rng.Float64(),
	}
	nr := 1 + rng.Intn(3)
	for i := 0; i < nr; i++ {
		// Footprints from well inside the private levels (16 KiB) to far
		// past the largest LLC allocation (256 MiB), log-uniform.
		bytes := uint64(16<<10) << uint(rng.Intn(15))
		p.Regions = append(p.Regions, trace.Region{
			Bytes:      bytes,
			Weight:     0.1 + rng.Float64(),
			Sequential: rng.Intn(2) == 0,
		})
	}
	return p
}

// TestBuildRandomGeometryMatchesReference is the property-test sweep of
// the build equivalence contract: random trace geometries — not just the
// curated suite benchmarks — must come out of the corner-batched build
// bit-identical to the seed build. Each case also runs through a shared
// Workspace to pin that scratch reuse across builds cannot leak state
// between cases.
func TestBuildRandomGeometryMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-build property test")
	}
	rng := rand.New(rand.NewSource(0x9aed))
	opts := Options{TraceLen: 3072, Warmup: 768}
	var ws Workspace
	for c := 0; c < 8; c++ {
		p := randomParams(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("case %d: randomParams produced invalid params: %v", c, err)
		}
		b := &bench.Benchmark{
			Name:       fmt.Sprintf("rand%d", c),
			TotalInstr: int64(opts.TraceLen) * 4,
			Phases: []bench.Phase{
				{Params: p, Weight: 1},
			},
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		benches := []*bench.Benchmark{b}
		fast, err := ws.Build(benches, opts)
		if err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		ref, err := BuildReference(benches, opts)
		if err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		fp, rp := fast.Phases[b.Name][0], ref.Phases[b.Name][0]
		if fp.Runs == rp.Runs {
			continue
		}
		for ci := range fp.Runs {
			for k := range fp.Runs[ci] {
				for wi := range fp.Runs[ci][k] {
					if fp.Runs[ci][k][wi] != rp.Runs[ci][k][wi] {
						t.Fatalf("case %d (%+v): c=%d k=%d w=%d:\nfast %+v\nref  %+v",
							c, p, ci, k, config.MinWays+wi,
							fp.Runs[ci][k][wi], rp.Runs[ci][k][wi])
					}
				}
			}
		}
	}
}
