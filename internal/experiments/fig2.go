package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/stats"
	"qosrm/internal/workload"
)

// Fig2Row is one two-core workload of the Figure 2 study.
type Fig2Row struct {
	Workload string
	Scenario workload.Scenario
	Apps     string
	// Savings per manager (RM1, RM2, RM3), as fractions, under perfect
	// modelling assumptions and without overheads, as in Section II.
	Savings [3]float64
}

// Fig2 runs the motivation study: one representative two-core workload
// per scenario, simulated with perfect models and no overheads.
func (c *Context) Fig2() ([]Fig2Row, error) {
	examples := workload.TwoCoreExamples()
	rows := make([]Fig2Row, len(examples))
	var jobs []runJob
	outs := make([][3]runOut, len(examples))
	for i, w := range examples {
		rows[i] = Fig2Row{Workload: w.Name, Scenario: w.Scenario, Apps: appNames(w.Apps)}
		for k := range rm.Kinds {
			jobs = append(jobs, runJob{
				apps: w.Apps,
				cfg:  c.simConfig(rm.Kinds[k], perfmodel.Model3, true, true),
				out:  &outs[i][k],
			})
		}
	}
	if err := c.runAll(jobs); err != nil {
		return nil, err
	}
	for i := range rows {
		for k := range rm.Kinds {
			rows[i].Savings[k] = outs[i][k].Saving
		}
	}
	return rows, nil
}

// RenderFig2 prints the per-scenario savings bars.
func RenderFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "FIGURE 2: Two-core workload scenarios, perfect models, no overheads")
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%s: %s)\n", r.Workload, r.Scenario, r.Apps)
		for k, kind := range rm.Kinds {
			fmt.Fprintf(w, "  %-4s %6.2f%% |%s|\n", kind, r.Savings[k]*100,
				stats.Bar(r.Savings[k]/0.30, 40))
		}
	}
}
