// Command scenarios runs declarative dynamic scenarios — per-core
// application queues with arrivals and departures, per-app QoS
// relaxations and mid-run QoS steps — against the simulation database,
// sweeping a whole scenario file in parallel. It can also emit scenario
// files from the Section IV-C churn generator so the four Figure 1
// scenario categories translate directly into multiprogrammed churn.
//
// Usage:
//
//	scenarios -f churn.json                     # run every spec in the file
//	scenarios -f churn.json -workers 4 -o out.json
//	scenarios -f churn.json -policies model3,greedy,brute   # policy shoot-out
//	scenarios -emit churn.json -scenario S1 -cores 4 -depth 3 -count 2
//	scenarios -emit trace.json -arrivals poisson -rate 6
//
// With -policies, every loaded spec is cloned across the named
// allocation policies (identical workload, different optimizer) and the
// report table compares them side by side. -emit generates churn files;
// -arrivals selects the arrival process (staggered waves, Poisson or
// diurnal trace-like load).
//
// The database is built over exactly the applications the specs
// schedule (and cached at -db), so small scenario files run in seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"qosrm/internal/db"
	"qosrm/internal/scenario"
	"qosrm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenarios: ")
	file := flag.String("f", "", "scenario file to run (one spec object or an array)")
	dbPath := flag.String("db", "", "database cache path (built if missing; empty disables caching)")
	traceLen := flag.Int("tracelen", 16384, "instructions measured per phase of the database build")
	warmup := flag.Int("warmup", 4096, "cache warm-up prefix of the database build")
	workers := flag.Int("workers", 0, "parallel scenario runs (0 = one per scenario)")
	out := flag.String("o", "", "write the reports as JSON to this path")
	policies := flag.String("policies", "", "comma-separated allocation policies to sweep every spec across (e.g. model3,greedy,brute; empty runs specs as written)")

	emit := flag.String("emit", "", "emit a generated churn scenario file here instead of running")
	scen := flag.String("scenario", "S1", "churn generation: scenario category S1..S4")
	cores := flag.Int("cores", 4, "churn generation: core count (even)")
	depth := flag.Int("depth", 3, "churn generation: queued applications per core")
	count := flag.Int("count", 2, "churn generation: scenarios to emit")
	seed := flag.Int64("seed", 20, "churn generation: seed")
	horizon := flag.Float64("horizon", 2e9, "churn generation: arrival horizon in ns")
	arrivals := flag.String("arrivals", "staggered", "churn generation: arrival process (staggered, poisson, diurnal)")
	rate := flag.Float64("rate", 0, "churn generation: expected arrivals per core over the horizon for poisson/diurnal (0 = depth)")
	flag.Parse()

	switch {
	case *emit != "":
		if err := emitChurn(*emit, *scen, *cores, *depth, *count, *seed, *horizon, *arrivals, *rate); err != nil {
			log.Fatal(err)
		}
	case *file != "":
		if err := run(*file, *dbPath, *traceLen, *warmup, *workers, *out, *policies); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// emitChurn writes count generated churn scenarios as one JSON array.
func emitChurn(path, scen string, cores, depth, count int, seed int64, horizon float64, arrivals string, rate float64) error {
	var s workload.Scenario
	switch scen {
	case "S1":
		s = workload.Scenario1
	case "S2":
		s = workload.Scenario2
	case "S3":
		s = workload.Scenario3
	case "S4":
		s = workload.Scenario4
	default:
		return fmt.Errorf("unknown scenario category %q (want S1..S4)", scen)
	}
	proc, err := workload.ParseArrivalProcess(arrivals)
	if err != nil {
		return err
	}
	opt := workload.ChurnOptions{Process: proc, Rate: rate}
	specs := make([]scenario.Spec, count)
	for i := range specs {
		churn, err := workload.GenerateChurnOpts(s, cores, depth, seed+int64(i), opt)
		if err != nil {
			return err
		}
		specs[i] = scenario.FromChurn(fmt.Sprintf("%dCore-%s-%s%d", cores, s, proc, i+1), churn, horizon)
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d scenarios to %s\n", count, path)
	return nil
}

// run sweeps every spec of a scenario file over one shared database,
// optionally expanded across allocation policies for a shoot-out.
func run(file, dbPath string, traceLen, warmup, workers int, out, policies string) error {
	specs, err := scenario.LoadFile(file)
	if err != nil {
		return err
	}
	if policies != "" {
		specs, err = scenario.PolicySweep(specs, strings.Split(policies, ","))
		if err != nil {
			return err
		}
	}
	if err := scenario.ValidateSpecs(specs); err != nil {
		return err
	}

	benches := scenario.Benchmarks(specs)
	start := time.Now()
	d, err := db.LoadOrBuild(dbPath, benches, db.Options{TraceLen: traceLen, Warmup: warmup})
	if err != nil {
		return err
	}
	fmt.Printf("database over %d applications ready in %v\n", len(benches), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	reports, err := scenario.Sweep(d, specs, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%d scenarios swept in %v\n\n", len(specs), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-28s %-5s %-7s %9s %9s %9s %6s %6s %s\n",
		"scenario", "rm", "policy", "saving", "viol", "budget", "jobs", "rm#", "time")
	for _, r := range reports {
		fmt.Printf("%-28s %-5s %-7s %8.2f%% %8.3f%% %8.3f%% %6d %6d %.3gs\n",
			r.Name, r.RM, r.Policy, r.Saving*100, r.ViolationRate*100, r.BudgetViolationRate*100,
			len(r.Jobs), r.RMCalled, r.TimeNs*1e-9)
	}

	if out != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nreports written to %s\n", out)
	}
	return nil
}
