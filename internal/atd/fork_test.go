package atd

import (
	"math/rand"
	"testing"

	"qosrm/internal/config"
)

// forkAddr returns a block address spread across the ATD's sets.
func forkAddr(rng *rand.Rand) uint64 { return uint64(rng.Intn(1024)) * config.BlockBytes }

// TestForkMatchesClone feeds a COW fork and a deep clone the same
// access stream and requires identical estimates — Fork's bit-identity
// contract.
func TestForkMatchesClone(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		rng := rand.New(rand.NewSource(seed))
		warm := MustNew(0)
		for i := 0; i < 1500; i++ {
			warm.Access(forkAddr(rng), int64(i), rng.Intn(4) != 0)
		}
		warm.ResetCounters()

		clone := warm.Clone()
		fork := warm.Fork()
		for i := 0; i < 3000; i++ {
			addr := forkAddr(rng)
			load := rng.Intn(4) != 0
			clone.Access(addr, int64(i), load)
			fork.Access(addr, int64(i), load)
		}
		if clone.MissCurve() != fork.MissCurve() {
			t.Fatalf("seed %d: miss curves diverge", seed)
		}
		if clone.LMMatrix() != fork.LMMatrix() {
			t.Fatalf("seed %d: LM matrices diverge", seed)
		}
		if clone.Accesses() != fork.Accesses() {
			t.Fatalf("seed %d: access counts diverge", seed)
		}
	}
}

// TestForkChainIsolation forks a descendant of a descendant and checks
// that driving the grandchild leaves the intermediate snapshot's
// estimates untouched.
func TestForkChainIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	warm := MustNew(0)
	for i := 0; i < 1000; i++ {
		warm.Access(forkAddr(rng), int64(i), true)
	}
	warm.ResetCounters()
	warmCurve := warm.MissCurve()

	mid := warm.Fork()
	for i := 0; i < 800; i++ {
		mid.Access(forkAddr(rng), int64(i), true)
	}
	midCurve, midLM := mid.MissCurve(), mid.LMMatrix()

	leaf := mid.Fork()
	for i := 0; i < 800; i++ {
		leaf.Access(forkAddr(rng), int64(i), rng.Intn(2) == 0)
	}

	if mid.MissCurve() != midCurve || mid.LMMatrix() != midLM {
		t.Fatal("leaf accesses mutated the intermediate snapshot")
	}
	if warm.MissCurve() != warmCurve {
		t.Fatal("descendant accesses mutated the warm root")
	}
	if leaf.MissCurve() == midCurve {
		t.Fatal("leaf did not observe its own accesses")
	}
	if m := leaf.MaterializedSets(); m < 0 {
		t.Fatal("leaf does not report as a fork")
	}
	if m := warm.MaterializedSets(); m != -1 {
		t.Fatalf("warm root reports as a fork (%d)", m)
	}
}
