package perfbench

import (
	"context"
	"net/http/httptest"
	"time"

	"qosrm/internal/client"
	"qosrm/internal/db"
	"qosrm/internal/loadgen"
	"qosrm/internal/scenario"
	"qosrm/internal/server"
)

// RunLoad measures admission behaviour under saturating open-loop load
// in two topologies over the same database and the same node
// configuration: one standalone node, then a two-node cluster where the
// attacked node forwards its overflow to an idle peer. The interesting
// comparison is the reject rate at identical offered load — the peer's
// queue is capacity the cluster keeps instead of shedding — alongside
// the submit latency the forwarding hop costs.
func RunLoad(short bool) ([]*loadgen.Result, error) {
	fixture, err := loadFixture()
	if err != nil {
		return nil, err
	}

	// One worker and a tiny queue make a node that genuinely saturates
	// at benchmark-scale load; both topologies use identical nodes so
	// the delta is the forwarding, not a capacity change.
	nodeOpts := server.Options{Workers: 1, QueueDepth: 8}
	rps := 600.0
	duration := 2 * time.Second
	if short {
		duration = time.Second
	}
	spec := loadSpec()

	attack := func(base string) func(context.Context) loadgen.Outcome {
		c := client.New(base)
		c.MaxRetries = -1 // rejections are the measurement
		return loadgen.SubmitAttack(c, func(name string) scenario.Spec {
			sp := spec
			sp.Name = name
			return sp
		})
	}
	run := func(name, base string) *loadgen.Result {
		return loadgen.Run(context.Background(), loadgen.Config{
			Name:     name,
			RPS:      rps,
			Duration: duration,
			// Forwarding hops lengthen submits; a roomy in-flight cap
			// keeps the generator from shedding load the cluster could
			// have absorbed.
			MaxInflight: 256,
			Attack:      attack(base),
		})
	}

	// Topology 1: a single node eats the whole load alone.
	srv1, err := server.New(fixture, nodeOpts)
	if err != nil {
		return nil, err
	}
	ts1 := httptest.NewServer(srv1.Handler())
	single := run("single-node", ts1.URL)
	ts1.Close()
	srv1.Close()

	// Topology 2: the same node with an identical idle peer behind it.
	srvB, err := server.New(fixture, nodeOpts)
	if err != nil {
		return nil, err
	}
	tsB := httptest.NewServer(srvB.Handler())
	optsA := nodeOpts
	optsA.Peers = []string{tsB.URL}
	srvA, err := server.New(fixture, optsA)
	if err != nil {
		tsB.Close()
		srvB.Close()
		return nil, err
	}
	tsA := httptest.NewServer(srvA.Handler())
	cluster := run("two-node-cluster", tsA.URL)
	tsA.Close()
	srvA.Close()
	tsB.Close()
	srvB.Close()

	return []*loadgen.Result{single, cluster}, nil
}

// loadSpec is the per-request scenario: the scenarioBatch shape with
// every job's instruction budget scaled up (1024x) until one worker's
// service rate sits far below the attack rate on any plausible machine
// — the queue, not the simulator, must be the contended resource, or
// nothing is ever rejected and the topology comparison measures
// nothing.
func loadSpec() scenario.Spec {
	sp := scenarioBatch()[0]
	sp.Cores = append([]scenario.CoreSpec(nil), sp.Cores...)
	for ci := range sp.Cores {
		sp.Cores[ci].Jobs = append([]scenario.JobSpec(nil), sp.Cores[ci].Jobs...)
		for ji := range sp.Cores[ci].Jobs {
			sp.Cores[ci].Jobs[ji].Work *= 1024
			sp.Cores[ci].Jobs[ji].ArrivalNs *= 1024
			sp.Cores[ci].Jobs[ji].DepartNs *= 1024
		}
	}
	return sp
}

// loadFixture builds the small two-application database the load
// topologies serve (the same fixture the microbenchmarks use).
func loadFixture() (*db.DB, error) {
	benches, opts, err := buildWorkload(true)
	if err != nil {
		return nil, err
	}
	return db.Build(benches[:2], opts)
}
