package qosrm

// Integration tests asserting the paper's headline claims end-to-end at
// near-production settings. These are the repository's reproduction
// gates; EXPERIMENTS.md records the exact measured values.

import (
	"testing"

	"qosrm/internal/workload"
)

// fullSystem builds the complete suite at a trace length large enough
// for the calibrated behaviour (32768 is within ~1 % of the production
// 65536 on every headline metric and twice as fast to build).
func fullSystem(t *testing.T) *System {
	t.Helper()
	if testing.Short() {
		t.Skip("integration tests skipped in -short mode")
	}
	sys, err := Open(Options{TraceLen: 32768, Warmup: 8192})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHeadlineEnergySavings(t *testing.T) {
	// Paper abstract: "up to 18% of energy, and on average 10%, can be
	// saved using the proposed scheme" — we accept the same order:
	// weighted average within [7%, 16%], maximum within [14%, 30%].
	sys := fullSystem(t)
	ctx := sys.Experiments()
	ctx.PerScenario = 3
	res, err := ctx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedAvg[2] < 0.07 || res.WeightedAvg[2] > 0.16 {
		t.Errorf("RM3 weighted average %.1f%% outside the paper's band", res.WeightedAvg[2]*100)
	}
	if res.Max[2] < 0.14 || res.Max[2] > 0.30 {
		t.Errorf("RM3 maximum %.1f%% outside the paper's band", res.Max[2]*100)
	}
	// RM3 must dominate RM2 and RM1 on the weighted average.
	if !(res.WeightedAvg[2] > res.WeightedAvg[1] && res.WeightedAvg[1] > res.WeightedAvg[0]) {
		t.Errorf("weighted averages out of order: %v", res.WeightedAvg)
	}
	// Scenario structure (Section V-A).
	s1 := res.ScenarioAvg[workload.Scenario1]
	s3 := res.ScenarioAvg[workload.Scenario3]
	s4 := res.ScenarioAvg[workload.Scenario4]
	if s1[2] < 1.2*s1[1] {
		t.Errorf("S1: RM3 %.1f%% not clearly above RM2 %.1f%%", s1[2]*100, s1[1]*100)
	}
	if s3[2] < 0.04 || s3[1] > 0.02 {
		t.Errorf("S3: want RM3-only savings, got RM2 %.1f%% RM3 %.1f%%", s3[1]*100, s3[2]*100)
	}
	if s4[2] > 0.06 {
		t.Errorf("S4: RM3 %.1f%% too large for the 'not effective' scenario", s4[2]*100)
	}
}

func TestHeadlineModelAccuracy(t *testing.T) {
	// Paper abstract: the framework "reduces the probability and
	// expected value of QoS violations by 32% and 49% respectively,
	// compared to previous approaches".
	sys := fullSystem(t)
	res, err := sys.Experiments().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	m1, m2, m3 := res.Models[0], res.Models[1], res.Models[2]
	if !(m3.Probability < m2.Probability && m2.Probability < m1.Probability) {
		t.Fatalf("violation probabilities out of order: %.4f %.4f %.4f",
			m1.Probability, m2.Probability, m3.Probability)
	}
	if m3.EV >= m2.EV*0.9 {
		t.Errorf("Model3 EV %.1f%% not clearly below Model2's %.1f%%", m3.EV*100, m2.EV*100)
	}
	if m3.Std >= m2.Std {
		t.Errorf("Model3 σ %.1f%% not below Model2's %.1f%%", m3.Std*100, m2.Std*100)
	}
}

func TestHeadlineTableII(t *testing.T) {
	// All 27 applications must classify into their Table II categories.
	sys := fullSystem(t)
	for _, b := range Suite() {
		cat, err := sys.Classify(b)
		if err != nil {
			t.Fatal(err)
		}
		if cat != b.Category {
			t.Errorf("%s: classified %s, want %s", b.Name, cat, b.Category)
		}
	}
}

func TestHeadlineModel3TracksPerfect(t *testing.T) {
	// Figure 9's claim: Model3's achieved savings are the closest to the
	// perfect model's.
	sys := fullSystem(t)
	ctx := sys.Experiments()
	ctx.PerScenario = 2
	res, err := ctx.Fig9Sizes([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.GapToPerfect[2] < res.GapToPerfect[1] && res.GapToPerfect[2] < res.GapToPerfect[0]) {
		t.Errorf("Model3 gap %.4f not smallest (M1 %.4f, M2 %.4f)",
			res.GapToPerfect[2], res.GapToPerfect[0], res.GapToPerfect[1])
	}
}
