package bench

import (
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// MB is a mebibyte, used for region footprints.
const MB = 1 << 20

// proto is the per-benchmark knob set from which phases are derived.
// Four archetypes map onto the paper's taxonomy:
//
//   - cache-sensitive apps own a multi-MB random-access region whose hit
//     rate moves with the LLC allocation around the 2 MB baseline;
//   - cache-insensitive apps either fit in the private caches (compute
//     bound) or stream through footprints far larger than any allocation;
//   - parallelism-sensitive apps issue bursts of independent loads spread
//     over hundreds of instructions, so the reachable MLP grows with the
//     reorder window (S → L);
//   - parallelism-insensitive apps either chase pointers (load-to-load
//     dependences serialise misses) or issue misses so densely that even
//     the small window, or the DRAM bandwidth, already saturates MLP.
//
// All traffic to the large region flows through bursts (single loads and
// stores stay in the hot region), so MPKI is set by loadFrac·burstProb·
// burstLen and MLP by the burst shape — the two dials are independent.
type proto struct {
	loadFrac   float64
	storeFrac  float64
	branchFrac float64
	mulFrac    float64
	branchMiss float64
	depProb    float64
	depMean    float64
	burstProb  float64 // probability a due load starts a main-region burst
	burst      int
	spread     int
	chase      float64
	storeMain  float64 // fraction of stores into the main region (writebacks)
	hotKB      int     // small sequential region (private-cache traffic)
	mainMB     float64 // large random region (LLC traffic); 0 = none
	windowMB   float64 // working-set window within the main region; 0 = uniform
	drift      int     // accesses per one-block window slide
}

// params instantiates the proto as trace parameters for one phase, with
// the standard per-phase variations: phase 1 is memory-heavier, phase 2
// leaner, phase 3 (where present) heavier still.
func (p proto) params(name string, phase int) trace.Params {
	bp, mm := p.burstProb, p.mainMB
	switch phase {
	case 1:
		bp *= 1.35
		mm *= 1.3
	case 2:
		bp *= 0.65
		mm *= 0.85
	case 3:
		bp *= 1.6
		mm *= 1.15
	}
	if bp > 1 {
		bp = 1
	}
	// Region sizes are expressed at represented (Table I) scale and
	// shrunk by MemScale alongside the cache geometry; see config.
	// The hot region takes all mixture traffic; the main region is
	// reached only through bursts.
	regions := []trace.Region{
		{Bytes: uint64(p.hotKB) << 10 / config.MemScale, Weight: 1, Sequential: true},
	}
	if mm > 0 {
		regions = append(regions, trace.Region{
			Bytes:       uint64(mm * MB / config.MemScale),
			Weight:      0,
			WindowBytes: uint64(p.windowMB * MB / config.MemScale),
			DriftEvery:  p.drift,
		})
	}
	return trace.Params{
		Seed:           seed(name, phase),
		LoadFrac:       p.loadFrac,
		StoreFrac:      p.storeFrac,
		BranchFrac:     p.branchFrac,
		MulFrac:        p.mulFrac,
		BranchMissRate: p.branchMiss,
		DepProb:        p.depProb,
		DepMean:        p.depMean,
		BurstProb:      bp,
		BurstLen:       p.burst,
		BurstSpread:    p.spread,
		ChaseFrac:      p.chase,
		StoreMainFrac:  p.storeMain,
		Regions:        regions,
	}
}

// Phase sequences (SimPoint-style interval→phase traces). The paper's
// applications have two to four phases; the suite mixes three shapes,
// keyed deterministically off the benchmark name so the per-application
// phase counts are stable. Sequence composition defines phase weights.
var (
	seq2 = []int{0, 0, 1, 0, 0, 1, 0, 1}             // 5/8, 3/8
	seq3 = []int{0, 0, 1, 0, 2, 0, 1, 0, 0, 1, 0, 2} // 7/12, 3/12, 2/12
	seq4 = []int{0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 2, 0} // 5/12, 3/12, 2/12, 2/12
)

// build assembles a benchmark from a proto with a 2-, 3- or 4-phase
// trace depending on its name hash. Phase 0 is the proto itself, phase 1
// memory-heavier, phase 2 leaner and phase 3 heavier still (see
// proto.params).
func build(name string, cat Category, p proto, totalBInstr int64) *Benchmark {
	var seq []int
	switch seed(name, 0) % 3 {
	case 0:
		seq = seq2
	case 1:
		seq = seq3
	default:
		seq = seq4
	}
	phases := 0
	for _, s := range seq {
		if s+1 > phases {
			phases = s + 1
		}
	}
	counts := make([]int, phases)
	for _, s := range seq {
		counts[s]++
	}
	b := &Benchmark{
		Name:       name,
		Category:   cat,
		Sequence:   seq,
		TotalInstr: totalBInstr * 1_000_000_000,
	}
	for i := 0; i < phases; i++ {
		b.Phases = append(b.Phases, Phase{
			Weight: float64(counts[i]) / float64(len(seq)),
			Params: p.params(name, i),
		})
	}
	return b
}

// suite is built once; Benchmarks are immutable after construction.
var suite []*Benchmark

func init() {
	common := proto{
		storeFrac:  0.08,
		branchFrac: 0.12,
		mulFrac:    0.25,
		branchMiss: 0.03,
		depProb:    0.45,
		depMean:    5.0,
		hotKB:      384,
	}
	// csps: multi-MB working set + window-limited independent bursts.
	csps := func(mainMB, windowMB float64, burstProb float64, burst, spread int, loadFrac, chase float64) proto {
		p := common
		p.mainMB, p.windowMB, p.drift = mainMB, windowMB, 16
		p.burstProb, p.burst, p.spread = burstProb, burst, spread
		p.loadFrac, p.chase = loadFrac, chase
		p.storeMain = 0.25
		return p
	}
	// cspi: multi-MB working set + pointer chasing (serialised misses).
	cspi := func(mainMB, windowMB float64, burstProb, loadFrac, chase float64) proto {
		p := common
		p.mainMB, p.windowMB, p.drift = mainMB, windowMB, 16
		p.burstProb, p.loadFrac, p.chase = burstProb, loadFrac, chase
		p.burst, p.spread = 1, 1
		p.storeMain = 0.25
		return p
	}
	// cips: streaming footprint ≫ LLC + window-limited bursts.
	cips := func(mainMB float64, burstProb float64, burst, spread int, loadFrac float64) proto {
		p := common
		p.mainMB, p.burstProb, p.burst, p.spread = mainMB, burstProb, burst, spread
		p.loadFrac = loadFrac
		p.chase = 0.02
		p.storeMain = 0.20
		return p
	}
	// compute: private-cache-resident, no LLC traffic.
	compute := func(hotKB int, loadFrac, mulFrac, branchFrac, branchMiss float64) proto {
		p := common
		p.hotKB = hotKB
		p.mainMB = 0
		p.loadFrac, p.mulFrac, p.branchFrac, p.branchMiss = loadFrac, mulFrac, branchFrac, branchMiss
		p.burst, p.spread = 1, 1
		return p
	}

	suite = []*Benchmark{
		// --- CS-PS (Table II): tonto, mcf, omnetpp, soplex, sphinx3 ---
		build("tonto", CSPS, csps(8, 2.6, 0.055, 7, 22, 0.24, 0.05), 2836),
		build("mcf", CSPS, csps(12, 3.2, 0.065, 10, 30, 0.26, 0.10), 935),
		build("omnetpp", CSPS, csps(8, 2.8, 0.055, 6, 26, 0.23, 0.05), 688),
		build("soplex", CSPS, csps(10, 3.6, 0.060, 8, 20, 0.24, 0.05), 1158),
		build("sphinx3", CSPS, csps(8, 2.4, 0.050, 7, 24, 0.22, 0.04), 2774),

		// --- CS-PI: bzip2, gcc, gobmk, gromacs, h264ref, hmmer, xalancbmk ---
		build("bzip2", CSPI, cspi(6, 2.0, 0.095, 0.20, 0.58), 2413),
		build("gcc", CSPI, cspi(8, 2.4, 0.105, 0.22, 0.58), 1064),
		build("gobmk", CSPI, func() proto {
			p := cspi(6, 1.8, 0.085, 0.18, 0.58)
			p.branchFrac, p.branchMiss = 0.18, 0.08
			return p
		}(), 1603),
		build("gromacs", CSPI, func() proto {
			p := cspi(6, 2.0, 0.085, 0.20, 0.58)
			p.mulFrac = 0.30
			return p
		}(), 1958),
		build("h264ref", CSPI, cspi(7, 2.2, 0.095, 0.24, 0.58), 3195),
		build("hmmer", CSPI, cspi(6, 1.9, 0.085, 0.25, 0.58), 3363),
		build("xalancbmk", CSPI, cspi(9, 2.8, 0.110, 0.23, 0.58), 1184),

		// --- CI-PS: namd, zeusmp, GemsFDTD, bwaves, leslie3d, libquantum, wrf ---
		build("namd", CIPS, cips(32, 0.022, 8, 26, 0.20), 3407),
		build("zeusmp", CIPS, cips(64, 0.028, 7, 24, 0.20), 2073),
		build("GemsFDTD", CIPS, cips(96, 0.030, 9, 28, 0.24), 1420),
		build("bwaves", CIPS, cips(128, 0.033, 10, 30, 0.25), 2780),
		build("leslie3d", CIPS, cips(80, 0.028, 8, 26, 0.20), 2154),
		build("libquantum", CIPS, cips(64, 0.025, 6, 36, 0.18), 3605),
		build("wrf", CIPS, cips(48, 0.025, 7, 22, 0.20), 3271),

		// --- CI-PI: cactusADM, dealII, gamess, perlbench, povray, sjeng, astar, lbm ---
		build("cactusADM", CIPI, cspi(64, 0, 0.094, 0.20, 0.62), 2954), // streaming + chasing: CI by footprint
		build("dealII", CIPI, compute(640, 0.24, 0.15, 0.12, 0.03), 2323),
		build("gamess", CIPI, compute(384, 0.22, 0.35, 0.10, 0.02), 3837),
		build("perlbench", CIPI, compute(800, 0.26, 0.10, 0.20, 0.06), 2378),
		build("povray", CIPI, compute(256, 0.20, 0.30, 0.12, 0.03), 1087),
		build("sjeng", CIPI, compute(512, 0.18, 0.10, 0.20, 0.09), 2474),
		build("astar", CIPI, cspi(48, 0, 0.088, 0.22, 0.64), 1224),
		build("lbm", CIPI, func() proto {
			// Dense ten-load bursts: every window size already covers a
			// whole burst, so MLP is high but flat across core sizes.
			p := cips(128, 0.007, 10, 1, 0.30)
			p.chase = 0.10 // clip cross-burst overlap in the largest window
			return p
		}(), 4146),
	}
}

// Suite returns the 27-application benchmark suite. The returned slice is
// shared; callers must not modify it.
func Suite() []*Benchmark { return suite }
