// Command perfbench runs the repository's performance benchmark suite
// (internal/perfbench) and writes the results as a JSON report, so the
// performance trajectory of the hot paths — database sweep, RM
// invocation, record lookup, co-simulation — is recorded alongside the
// code. Commit the output as BENCH_<n>.json when a PR changes a hot
// path.
//
// Usage:
//
//	go run ./cmd/perfbench [-short] [-o BENCH_1.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"qosrm/internal/perfbench"
)

func main() {
	short := flag.Bool("short", false, "shrink workloads for CI (subset suite)")
	out := flag.String("o", "BENCH.json", "output JSON path")
	flag.Parse()

	start := time.Now()
	rep, err := perfbench.Run(*short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}

	for _, r := range rep.Results {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op  (n=%d)\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.N)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Printf("wrote %s in %s\n", *out, time.Since(start).Round(time.Millisecond))
}
