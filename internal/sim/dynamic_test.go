package sim

import (
	"math"
	"reflect"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/rm"
)

// staticDynamic wraps a static one-application-per-core workload as a
// dynamic description: one job per core, arriving at time zero, running
// to the default target — exactly what Run simulates.
func staticDynamic(apps []*bench.Benchmark) Dynamic {
	dyn := Dynamic{Queues: make([]Queue, len(apps))}
	for i, a := range apps {
		dyn.Queues[i] = Queue{Jobs: []Job{{App: a}}}
	}
	return dyn
}

func TestDynamicMatchesStaticRun(t *testing.T) {
	// A static scenario run through the dynamic engine must be
	// bit-identical to plain Run — the same pattern as the
	// db.BuildReference / GlobalOptimizeReference equivalence tests.
	d := sharedDB(t)
	cases := []struct {
		name string
		apps []string
		cfg  Config
	}{
		{"idle", []string{"mcf", "povray"}, Config{RM: rm.Idle}},
		{"rm3-model3", []string{"mcf", "povray"}, Config{RM: rm.RM3}},
		{"rm2-model1", []string{"bwaves", "xalancbmk"}, Config{RM: rm.RM2, Model: 1}},
		{"perfect", []string{"libquantum", "omnetpp"}, Config{RM: rm.RM3, Perfect: true}},
		{"greedy", []string{"mcf", "xalancbmk"}, Config{RM: rm.RM3, GreedyGlobal: true}},
		{"no-overheads", []string{"mcf", "povray"}, Config{RM: rm.RM3, DisableOverheads: true}},
		{"restarting-app", []string{"omnetpp", "mcf"}, Config{RM: rm.RM1}},
		{"alpha", []string{"mcf", "povray"}, Config{RM: rm.RM3, Alpha: 1.2}},
		{"4-core", []string{"mcf", "povray", "bwaves", "xalancbmk"}, Config{RM: rm.RM3}},
		{"single-core", []string{"mcf"}, Config{RM: rm.RM3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := apps(t, tc.apps...)
			want, err := Run(d, w, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunDynamic(d, staticDynamic(w), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.TimeNs != want.TimeNs {
				t.Errorf("TimeNs %v != %v", got.TimeNs, want.TimeNs)
			}
			if got.EnergyJ != want.EnergyJ {
				t.Errorf("EnergyJ %v != %v", got.EnergyJ, want.EnergyJ)
			}
			if got.UncoreJ != want.UncoreJ {
				t.Errorf("UncoreJ %v != %v", got.UncoreJ, want.UncoreJ)
			}
			if got.RMCalled != want.RMCalled {
				t.Errorf("RMCalled %d != %d", got.RMCalled, want.RMCalled)
			}
			if len(got.Jobs) != len(want.Apps) {
				t.Fatalf("%d jobs for %d apps", len(got.Jobs), len(want.Apps))
			}
			for _, j := range got.Jobs {
				if j.Slot != 0 || j.StartNs != 0 || j.Departed {
					t.Errorf("static job looks dynamic: %+v", j)
				}
				if !reflect.DeepEqual(j.AppResult, want.Apps[j.Core]) {
					t.Errorf("core %d: job result %+v != app result %+v",
						j.Core, j.AppResult, want.Apps[j.Core])
				}
			}
		})
	}
}

// churnScenario is the acceptance scenario: a 4-core system with three
// churn events (one early departure, two queued follow-up arrivals), two
// distinct per-app QoS relaxations and one mid-run QoS step.
func churnScenario(t *testing.T) Dynamic {
	t.Helper()
	a := func(name string) *bench.Benchmark { return apps(t, name)[0] }
	const fiveIntervals = 5 * 100_000_000 * 2048 // paper-scale work ≈ 5 intervals at Scale 2048
	return Dynamic{
		Queues: []Queue{
			// Core 0: a memory-bound app departs early; a compute-bound
			// app (already waiting) takes over with a relaxed target.
			{Jobs: []Job{
				{App: a("mcf"), Work: fiveIntervals, DepartNs: 2.5e8},
				{App: a("povray"), Work: fiveIntervals, Alpha: 1.3},
			}},
			// Core 1: two streamers back to back; the second arrives
			// only after a fixed delay.
			{Jobs: []Job{
				{App: a("bwaves"), Work: fiveIntervals},
				{App: a("libquantum"), Work: fiveIntervals, ArrivalNs: 6e8},
			}},
			// Core 2: one long cache-sensitive app with a strict target.
			{Jobs: []Job{{App: a("xalancbmk"), Work: 2 * fiveIntervals, Alpha: 1.05}}},
			// Core 3: a single compute-bound app.
			{Jobs: []Job{{App: a("omnetpp"), Work: fiveIntervals}}},
		},
		// Mid-run, the operator relaxes every core's QoS target by 15%.
		Steps: []QoSStep{{AtNs: 4e8, Core: -1, Alpha: 1.15}},
	}
}

func TestDynamicChurnScenario(t *testing.T) {
	d := sharedDB(t)
	dyn := churnScenario(t)
	cfg := Config{RM: rm.RM3}

	sumWays := func(alloc []int) int {
		s := 0
		for _, w := range alloc {
			s += w
		}
		return s
	}
	bad := 0
	cfg.Trace = func(e Event) {
		if sumWays(e.Allocations) != config.TotalWays(4) {
			bad++
		}
	}
	r, err := RunDynamic(d, dyn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d events with non-conserved ways", bad)
	}
	if len(r.Jobs) != 6 {
		t.Fatalf("%d job results, want 6", len(r.Jobs))
	}

	byCoreSlot := map[[2]int]JobResult{}
	for _, j := range r.Jobs {
		byCoreSlot[[2]int{j.Core, j.Slot}] = j
	}
	mcf := byCoreSlot[[2]int{0, 0}]
	if !mcf.Departed || mcf.FinishNs != 2.5e8 {
		t.Errorf("mcf must depart at 2.5e8, got %+v", mcf)
	}
	povray := byCoreSlot[[2]int{0, 1}]
	if povray.Departed || povray.StartNs != mcf.FinishNs {
		t.Errorf("povray must take over at mcf's departure, got start %v", povray.StartNs)
	}
	if povray.Alpha != 1.3 {
		t.Errorf("povray alpha %v, want its explicit 1.3", povray.Alpha)
	}
	libq := byCoreSlot[[2]int{1, 1}]
	if libq.StartNs < 6e8 {
		t.Errorf("libquantum started %v, before its arrival", libq.StartNs)
	}
	// The global step retargeted every job without an explicit alpha.
	if j := byCoreSlot[[2]int{3, 0}]; j.Alpha != 1.15 {
		t.Errorf("omnetpp ended under alpha %v, want the stepped 1.15", j.Alpha)
	}
	if j := byCoreSlot[[2]int{2, 0}]; j.Alpha != 1.05 {
		t.Errorf("xalancbmk ended under alpha %v, want its explicit 1.05", j.Alpha)
	}
	for _, j := range r.Jobs {
		if j.FinishNs < j.StartNs {
			t.Errorf("job %+v finishes before it starts", j)
		}
		if !j.Departed && j.Intervals == 0 {
			t.Errorf("completed job %s/%d ran no intervals", j.Bench, j.Slot)
		}
		// The α-relaxed budget is never stricter than the baseline.
		if j.BudgetViolations > j.Violations {
			t.Errorf("job %s/%d: %d budget violations above %d baseline violations",
				j.Bench, j.Slot, j.BudgetViolations, j.Violations)
		}
	}
	if r.TimeNs <= 6e8 {
		t.Errorf("simulation ended at %v, before the delayed arrival", r.TimeNs)
	}
	if r.RMCalled == 0 {
		t.Error("manager never invoked")
	}

	// Determinism: an identical description must reproduce the run
	// bit for bit.
	again, err := RunDynamic(d, churnScenario(t), Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Jobs, again.Jobs) || r.EnergyJ != again.EnergyJ ||
		r.TimeNs != again.TimeNs || r.RMCalled != again.RMCalled {
		t.Error("dynamic run not deterministic")
	}
}

func TestDynamicValidation(t *testing.T) {
	d := sharedDB(t)
	mcf := apps(t, "mcf")[0]
	cases := []struct {
		name string
		dyn  Dynamic
	}{
		{"no cores", Dynamic{}},
		{"no jobs", Dynamic{Queues: []Queue{{}, {}}}},
		{"nil app", Dynamic{Queues: []Queue{{Jobs: []Job{{}}}}}},
		{"unknown app", Dynamic{Queues: []Queue{{Jobs: []Job{{App: &bench.Benchmark{Name: "gcc"}}}}}}},
		{"negative work", Dynamic{Queues: []Queue{{Jobs: []Job{{App: mcf, Work: -1}}}}}},
		{"bad step core", Dynamic{
			Queues: []Queue{{Jobs: []Job{{App: mcf}}}},
			Steps:  []QoSStep{{AtNs: 1, Core: 7, Alpha: 1.1}},
		}},
		{"bad step alpha", Dynamic{
			Queues: []Queue{{Jobs: []Job{{App: mcf}}}},
			Steps:  []QoSStep{{AtNs: 1, Core: -1}},
		}},
	}
	for _, tc := range cases {
		if _, err := RunDynamic(d, tc.dyn, Config{}); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestDynamicIdleGap(t *testing.T) {
	// A queue gap leaves the core idle: wall-clock covers the gap but
	// only the uncore draws energy through it.
	d := sharedDB(t)
	const work = 3 * 100_000_000 * 2048
	dyn := Dynamic{Queues: []Queue{{Jobs: []Job{
		{App: apps(t, "povray")[0], Work: work},
		{App: apps(t, "povray")[0], Work: work, ArrivalNs: 1e10},
	}}}}
	r, err := RunDynamic(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(r.Jobs))
	}
	if r.Jobs[1].StartNs != 1e10 {
		t.Errorf("second job started %v, want exactly its arrival", r.Jobs[1].StartNs)
	}
	if r.TimeNs <= 1e10 {
		t.Errorf("run ended %v, inside the idle gap", r.TimeNs)
	}
	// Identical work at (near) identical conditions: the two jobs' core
	// energies must agree closely, with no idle-time charge inflating
	// the second.
	e0, e1 := r.Jobs[0].EnergyJ, r.Jobs[1].EnergyJ
	if math.Abs(e0-e1) > 0.05*e0 {
		t.Errorf("idle gap distorted job energy: %v vs %v", e0, e1)
	}
}

func TestDynamicPerAppAlphaSavesEnergy(t *testing.T) {
	// Relaxing one application's QoS target must not cost energy with a
	// perfect predictor (the static single-alpha analogue is
	// TestAlphaRelaxationIncreasesSavings).
	d := sharedDB(t)
	base := staticDynamic(apps(t, "mcf", "povray"))
	relaxed := staticDynamic(apps(t, "mcf", "povray"))
	relaxed.Queues[0].Jobs[0].Alpha = 1.4
	cfg := Config{RM: rm.RM3, Perfect: true}
	strict, err := RunDynamic(d, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RunDynamic(d, relaxed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare core+DRAM energy: a relaxed bottleneck application runs
	// longer, so total chip energy legitimately grows with the uncore
	// term, but the applications themselves must not spend more.
	if a, b := appEnergy(rel), appEnergy(strict); a > b*1.001 {
		t.Errorf("per-app α=1.4 app energy %.4f above α=1 energy %.4f", a, b)
	}
	if rel.Jobs[0].Alpha == rel.Jobs[1].Alpha {
		t.Error("per-app alphas not distinct in the results")
	}
}

// appEnergy sums core+DRAM energy over all jobs, excluding the uncore
// term that scales with wall-clock time.
func appEnergy(r *DynamicResult) float64 {
	s := 0.0
	for _, j := range r.Jobs {
		s += j.EnergyJ
	}
	return s
}

func TestDynamicTrailingStepIsNoOp(t *testing.T) {
	// A QoS step scheduled after every queue has drained has nothing
	// left to retarget: it must not stretch the wall clock (and with it
	// the uncore energy) of an already-finished run.
	d := sharedDB(t)
	cfg := Config{RM: rm.RM3}
	plain, err := RunDynamic(d, staticDynamic(apps(t, "mcf", "povray")), cfg)
	if err != nil {
		t.Fatal(err)
	}
	trailing := staticDynamic(apps(t, "mcf", "povray"))
	trailing.Steps = []QoSStep{{AtNs: plain.TimeNs * 10, Core: -1, Alpha: 1.1}}
	r, err := RunDynamic(d, trailing, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeNs != plain.TimeNs || r.EnergyJ != plain.EnergyJ {
		t.Errorf("trailing step changed the run: time %v vs %v, energy %v vs %v",
			r.TimeNs, plain.TimeNs, r.EnergyJ, plain.EnergyJ)
	}
}

func TestDynamicEdgeCases(t *testing.T) {
	d := sharedDB(t)
	const work = 2 * 100_000_000 * 2048
	// All cores idle at t=0; first arrivals staggered; one departure
	// time before its job can even start (overdue departure).
	dyn := Dynamic{Queues: []Queue{
		{Jobs: []Job{{App: apps(t, "mcf")[0], Work: work, ArrivalNs: 1e8}}},
		{Jobs: []Job{
			{App: apps(t, "povray")[0], Work: work, ArrivalNs: 2e8},
			{App: apps(t, "bwaves")[0], Work: work, DepartNs: 1e8},
		}},
	}}
	r, err := RunDynamic(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(r.Jobs))
	}
	for _, j := range r.Jobs {
		if j.Bench == "bwaves" {
			if !j.Departed || j.Intervals != 0 {
				t.Errorf("overdue-departure job must leave with zero work: %+v", j)
			}
			if j.FinishNs != j.StartNs {
				t.Errorf("overdue departure not instantaneous: %+v", j)
			}
		}
	}
	if r.TimeNs <= 2e8 {
		t.Errorf("run ended %v before the last arrival", r.TimeNs)
	}
}

func TestDynamicQoSStepRelaxes(t *testing.T) {
	// Stepping every core's alpha up mid-run must not increase energy
	// under a perfect predictor.
	d := sharedDB(t)
	cfg := Config{RM: rm.RM3, Perfect: true}
	plain, err := RunDynamic(d, staticDynamic(apps(t, "mcf", "povray")), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepped := staticDynamic(apps(t, "mcf", "povray"))
	stepped.Steps = []QoSStep{{AtNs: plain.TimeNs / 100, Core: -1, Alpha: 1.4}}
	r, err := RunDynamic(d, stepped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Core+DRAM energy must not grow from relaxing the targets (the
	// uncore term may, as the relaxed bottleneck runs longer).
	if a, b := appEnergy(r), appEnergy(plain); a > b*1.001 {
		t.Errorf("stepped run app energy %.4f above constant-alpha %.4f", a, b)
	}
	// The step must be visible in the recorded job alphas.
	for _, j := range r.Jobs {
		if j.Alpha != 1.4 {
			t.Errorf("job %s ended under alpha %v, want 1.4", j.Bench, j.Alpha)
		}
	}
}
