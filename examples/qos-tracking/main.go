// QoS tracking: compare how accurately the three online performance
// models track QoS targets (the paper's Figures 7 and 8). Model1 uses
// raw miss counts, Model2 a constant measured MLP, and Model3 — the
// paper's proposal — per-(core size, allocation) leading-miss estimates
// from the ATD extension.
package main

import (
	"fmt"
	"log"
	"os"

	"qosrm"
	"qosrm/internal/experiments"
)

func main() {
	log.SetFlags(0)

	sys, err := qosrm.Open(qosrm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := sys.Experiments()

	// The exhaustive Section IV-D sweep: every phase of every
	// application × every current setting × every target setting.
	res, err := ctx.Fig7()
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig7(os.Stdout, res)
	fmt.Println()
	experiments.RenderFig8(os.Stdout, res)

	fmt.Println()
	fmt.Println("Per-workload effect on the manager (RM3 under each model):")
	apps := []*qosrm.Benchmark{
		qosrm.MustBenchmark("libquantum"),
		qosrm.MustBenchmark("omnetpp"),
	}
	for _, m := range []qosrm.ModelKind{qosrm.Model1, qosrm.Model2, qosrm.Model3} {
		saving, r, err := sys.Savings(apps, qosrm.SimConfig{RM: qosrm.RM3, Model: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: saving %6.2f%%, violation rate %.3f\n", m, saving*100, r.ViolationRate())
	}
	saving, r, err := sys.Savings(apps, qosrm.SimConfig{RM: qosrm.RM3, Perfect: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Perfect: saving %6.2f%%, violation rate %.3f\n", saving*100, r.ViolationRate())
}
