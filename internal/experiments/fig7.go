package experiments

import (
	"fmt"
	"io"
	"sync"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
	"qosrm/internal/stats"
)

// ModelQoS is one model's QoS-violation statistics (Figures 7 and 8).
type ModelQoS struct {
	Model perfmodel.Kind
	// Probability is the weighted fraction of (phase, current setting,
	// target setting) triples where the model predicts the target meets
	// QoS but the actual execution would be slower than baseline.
	Probability float64
	// EV and Std are the expected value and standard deviation of the
	// violation magnitude (Eq. 6) over violating cases.
	EV, Std float64
	// Hist bins violating cases by magnitude (for Figure 8).
	Hist *stats.Histogram
}

// Fig7Result carries the three models' statistics.
type Fig7Result struct {
	Models [3]ModelQoS
}

// settingsGrid enumerates the full per-core configuration space.
func settingsGrid() []config.Setting {
	out := make([]config.Setting, 0, config.NumSizes*config.NumFreqs*perfmodel.NumWays)
	for _, c := range config.Sizes {
		for f := 0; f < config.NumFreqs; f++ {
			for w := config.MinWays; w <= config.MaxWays; w++ {
				out = append(out, config.Setting{Core: c, Freq: f, Ways: w})
			}
		}
	}
	return out
}

// Fig7 performs the exhaustive QoS evaluation of Section IV-D2: it
// iterates over all phases of all applications (weighted by phase
// weight), all possible current settings and all target settings, with
// equal probability for current and target, and checks the paper's
// violation conditions:
//
//  1. actual: T_act(target) > T_act(baseline);
//  2. predicted: T(target) ≤ T(baseline), both with the same model.
//
// The statistics of interval i come from the database record at the
// current setting; the actual values of interval i+1 come from the
// record at the target setting.
func (c *Context) Fig7() (*Fig7Result, error) {
	grid := settingsGrid()
	models := []perfmodel.Kind{perfmodel.Model1, perfmodel.Model2, perfmodel.Model3}

	accs := make([]fig7Acc, 0)
	var mu sync.Mutex

	type job struct {
		b     *bench.Benchmark
		phase int
	}
	var jobs []job
	suite := bench.Suite()
	for _, b := range suite {
		for p := range b.Phases {
			jobs = append(jobs, job{b, p})
		}
	}
	benchWeight := 1.0 / float64(len(suite))

	var wg sync.WaitGroup
	ch := make(chan job)
	var firstErr error
	for i := 0; i < c.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				a, err := c.fig7Phase(j.b, j.phase, grid, models, benchWeight)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				} else if err == nil {
					accs = append(accs, *a)
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Fig7Result{}
	for m := range models {
		res.Models[m].Model = models[m]
		res.Models[m].Hist = stats.NewHistogram(20, 0.5)
	}
	var mass float64
	var violMass [3]float64
	for i := range accs {
		mass += accs[i].mass
		for m := range models {
			violMass[m] += accs[i].total[m]
			for bi, bv := range accs[i].hist[m].Bins {
				res.Models[m].Hist.Bins[bi] += bv
			}
			res.Models[m].Hist.Over += accs[i].hist[m].Over
		}
	}
	// Merge the per-phase magnitude accumulators (moment-preserving).
	var exact [3]stats.Weighted
	for i := range accs {
		for m := range models {
			exact[m] = mergeWeighted(exact[m], accs[i].viol[m])
		}
	}
	for m := range models {
		res.Models[m].Probability = violMass[m] / mass
		res.Models[m].EV = exact[m].Mean()
		res.Models[m].Std = exact[m].Std()
	}
	return res, nil
}

// fig7Acc accumulates one phase's violation statistics.
type fig7Acc struct {
	viol  [3]stats.Weighted // magnitude accumulator per model
	total [3]float64        // weight mass of violating triples
	mass  float64           // total triple mass
	hist  [3]*stats.Histogram
}

// fig7Phase evaluates one phase's full (current, target) product.
func (c *Context) fig7Phase(b *bench.Benchmark, phase int, grid []config.Setting,
	models []perfmodel.Kind, benchWeight float64) (*fig7Acc, error) {
	out := &fig7Acc{}
	for m := range out.hist {
		out.hist[m] = stats.NewHistogram(20, 0.5)
	}

	// Precompute actual times and interval statistics per grid setting.
	actual := make([]float64, len(grid))
	ivs := make([]perfmodel.IntervalStats, len(grid))
	for i, s := range grid {
		st, err := c.DB.Stats(b.Name, phase, s)
		if err != nil {
			return nil, err
		}
		actual[i] = st.TPI()
		ivs[i] = perfmodel.FromDB(st, s)
	}
	baseIdx := -1
	for i, s := range grid {
		if s == config.Baseline() {
			baseIdx = i
			break
		}
	}
	actBase := actual[baseIdx]

	w := benchWeight * b.Phases[phase].Weight / float64(len(grid)*len(grid))
	for ci := range grid {
		// Predicted baseline time with each model from this current
		// setting's statistics.
		var predBase [3]float64
		for m, mk := range models {
			predBase[m] = ivs[ci].TimePI(mk, config.Baseline())
		}
		for ti, tgt := range grid {
			out.mass += w
			actT := actual[ti]
			slower := actT > actBase*(1+1e-12)
			var v float64
			if slower {
				v = (actT - actBase) / actBase
			}
			for m, mk := range models {
				if !slower {
					continue
				}
				if ivs[ci].TimePI(mk, tgt) <= predBase[m] {
					out.total[m] += w
					out.viol[m].Add(v, w)
					out.hist[m].Add(v, w)
				}
			}
		}
	}
	return out, nil
}

// mergeWeighted combines two weighted accumulators.
func mergeWeighted(a, b stats.Weighted) stats.Weighted {
	out := a
	if b.Weight() > 0 {
		// Reconstruct from moments: Weighted exposes only mean/std, so
		// merge via its Add with the component mass at the component
		// mean and variance folded in through two pseudo-points.
		m, s, w := b.Mean(), b.Std(), b.Weight()
		out.Add(m+s, w/2)
		out.Add(m-s, w/2)
	}
	return out
}

// RenderFig7 prints the three models' violation statistics.
func RenderFig7(w io.Writer, r *Fig7Result) {
	fmt.Fprintln(w, "FIGURE 7: QoS violation probability, expected value and std deviation")
	for _, m := range r.Models {
		fmt.Fprintf(w, "  %-7s P(violation)=%6.3f%%  EV=%6.2f%%  σ=%6.2f%%\n",
			m.Model, m.Probability*100, m.EV*100, m.Std*100)
	}
	m3, m2, m1 := r.Models[2], r.Models[1], r.Models[0]
	if m1.Probability > 0 && m2.Probability > 0 {
		fmt.Fprintf(w, "  Model3 vs Model1: probability %+.0f%%   (paper: -46%%)\n",
			(m3.Probability/m1.Probability-1)*100)
		fmt.Fprintf(w, "  Model3 vs Model2: probability %+.0f%%, EV %+.0f%%, σ %+.0f%%   (paper: -32%%, -49%%, -26%%)\n",
			(m3.Probability/m2.Probability-1)*100, (m3.EV/m2.EV-1)*100, (m3.Std/m2.Std-1)*100)
	}
}

// RenderFig8 prints the violation-magnitude histograms, normalised to
// the largest bin across models as in the paper.
func RenderFig8(w io.Writer, r *Fig7Result) {
	fmt.Fprintln(w, "FIGURE 8: distribution of QoS violations (bins of violation magnitude)")
	max := 0.0
	for _, m := range r.Models {
		if mb := m.Hist.MaxBin(); mb > max {
			max = mb
		}
	}
	fmt.Fprintf(w, "%-9s", "bin")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %22s", m.Model)
	}
	fmt.Fprintln(w)
	for bi := range r.Models[0].Hist.Bins {
		fmt.Fprintf(w, "%-9s", r.Models[0].Hist.BinLabel(bi))
		for _, m := range r.Models {
			n := m.Hist.Normalized(max)
			fmt.Fprintf(w, " %6.3f|%-15s", n[bi], stats.Bar(n[bi], 15))
		}
		fmt.Fprintln(w)
	}
}
