package server

import (
	"context"
	"sort"
	"sync"
	"time"

	"qosrm/internal/api"
	"qosrm/internal/client"
	"qosrm/internal/scenario"
)

// Cluster mode: a node with Options.Peers forwards a submit it would
// otherwise reject with queue_full to the least-loaded live peer. The
// peer admits the job exactly as a direct submit would — journaled
// before the 202, deduplicated by the caller's Idempotency-Key, which
// travels verbatim — and this node answers the caller with the peer's
// job handle, the peer recorded in JobStatus.Origin. The job's
// crash-safety story belongs entirely to the origin node's journal;
// the forwarding node never half-owns it.
//
// The X-Qosrm-Forwarded header counts hops: a node only forwards a
// request whose hop count is below Options.ForwardHops, so a fully
// saturated cluster degrades to an honest queue_full 503 instead of a
// forwarding loop.

// peerHealthTTL is how long one /healthz poll of a peer stays fresh:
// long enough that a saturating submit storm does not multiply into a
// healthz storm on the peers, short enough that load ranking tracks a
// draining queue.
const peerHealthTTL = 200 * time.Millisecond

// peer is one cluster node this server can forward overflow to, with a
// briefly-cached view of its /healthz load report.
type peer struct {
	base   string
	client *client.Client

	mu     sync.Mutex
	polled time.Time
	health *api.Health
	err    error
}

// load returns the peer's health, polling at most once per
// peerHealthTTL. A poll error is cached for the same interval: a dead
// peer costs one timed-out probe per TTL, not one per rejected submit.
func (p *peer) load(ctx context.Context, now time.Time) (*api.Health, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now.Sub(p.polled) < peerHealthTTL && (p.health != nil || p.err != nil) {
		return p.health, p.err
	}
	p.polled = now
	p.health, p.err = p.client.Health(ctx)
	return p.health, p.err
}

// forwarder holds the peer set of a cluster-mode server.
type forwarder struct {
	peers []*peer
}

// newForwarder builds the peer set. Forwarding clients do not retry:
// the cluster-level fallback — try the next peer, then answer 503 — is
// the retry policy, and stacking per-peer backoff under it would stall
// the submit path.
func newForwarder(bases []string) *forwarder {
	f := &forwarder{}
	for _, base := range bases {
		c := client.New(base)
		c.MaxRetries = -1
		f.peers = append(f.peers, &peer{base: c.Base(), client: c})
	}
	return f
}

// rank returns the live peers ordered by queue occupancy, least loaded
// first. Peers whose health poll failed are dropped; peers reporting a
// full queue stay ranked last rather than dropped — their view is up
// to peerHealthTTL stale, and the forward attempt itself is the
// authoritative admission check.
func (f *forwarder) rank(ctx context.Context, now time.Time) []*peer {
	type ranked struct {
		p    *peer
		load float64
	}
	var live []ranked
	for _, p := range f.peers {
		h, err := p.load(ctx, now)
		if err != nil || h == nil {
			continue
		}
		occ := 1.0
		if h.QueueDepth > 0 {
			occ = float64(h.Queued) / float64(h.QueueDepth)
		}
		live = append(live, ranked{p: p, load: occ})
	}
	sort.SliceStable(live, func(a, b int) bool { return live[a].load < live[b].load })
	out := make([]*peer, len(live))
	for i, r := range live {
		out[i] = r.p
	}
	return out
}

// forwardedRef remembers a batch this node forwarded under an
// idempotency key: origin node, job id, and the acceptance-time status
// snapshot served if the origin is briefly unreachable. Entries age out
// with the job TTL, like the local key map.
type forwardedRef struct {
	origin string
	id     string
	at     time.Time
	status JobStatus
}

// tryForward pushes an overflow batch to the least-loaded live peer.
// It returns (status, true) on success — Origin filled in, the key
// remembered for dedupe — and (nil, false) when no peer could take the
// batch, in which case the caller answers the honest queue_full 503.
func (s *Server) tryForward(ctx context.Context, specs []scenario.Spec, key string, hops int) (*JobStatus, bool) {
	if s.forwarder == nil || hops >= s.opts.ForwardHops {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.ForwardTimeout)
	defer cancel()
	peers := s.forwarder.rank(ctx, s.now())
	for _, p := range peers {
		st, err := p.client.ForwardSweep(ctx, specs, key, hops+1)
		if err != nil {
			continue
		}
		// A multi-hop forward already carries the deeper origin; a
		// direct admission on the peer is stamped with the peer itself.
		if st.Origin == "" {
			st.Origin = p.base
		}
		s.metrics.jobsForwarded.Add(1)
		if key != "" {
			s.mu.Lock()
			s.forwardedKeys[key] = &forwardedRef{origin: st.Origin, id: st.ID, at: s.now(), status: *st}
			s.mu.Unlock()
		}
		return st, true
	}
	if len(peers) > 0 || len(s.forwarder.peers) > 0 {
		s.metrics.forwardFailed.Add(1)
	}
	return nil, false
}

// forwardedByKey resolves a previously-forwarded idempotency key to the
// job's current status on its origin node; ok is false when the key was
// never forwarded. When the origin is unreachable the acceptance-time
// snapshot is served instead — the handle (id + origin) is what the
// caller needs to keep polling, and it is immutable.
func (s *Server) forwardedByKey(ctx context.Context, key string) (*JobStatus, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	ref := s.forwardedKeys[key]
	s.mu.Unlock()
	if ref == nil {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.ForwardTimeout)
	defer cancel()
	c := client.New(ref.origin)
	c.MaxRetries = -1
	if st, err := c.Job(ctx, ref.id); err == nil {
		st.Origin = ref.origin
		return st, true
	}
	st := ref.status
	return &st, true
}
