// Curve memoization for the per-interval RM invocation path.
//
// Localize is a pure function of its predictor, manager kind and QoS
// options, and the model predictor is in turn a pure function of the
// database record of the measured interval. The co-simulator therefore
// sees a bounded set of distinct local optimisations per run — one per
// (benchmark, phase, setting the interval ran at) with the model
// predictor, one per (benchmark, phase) with the perfect oracle — while
// invoking the RM at every interval boundary. The CurveCache memoizes
// those curves so each is computed once per run instead of at every
// boundary.
package rm

// CurveCache memoizes Localize results under caller-chosen comparable
// keys. A cache is only valid for one fixed (RM kind, model, alpha)
// combination — the co-simulator owns one per run, so those are
// implicit in the cache instance; the key carries everything else the
// predictor depends on (the co-simulator keys model predictors by the
// measured interval's shared *db.Stats record, which identifies its
// (benchmark, phase, setting) triple, and oracle predictors by
// benchmark and phase). Not safe for concurrent use.
type CurveCache struct {
	m map[any]*Curve
}

// Get returns the memoized curve for key, computing and retaining it on
// first use. The returned curve is shared: callers must treat it as
// read-only.
func (c *CurveCache) Get(key any, compute func() Curve) *Curve {
	if cv, ok := c.m[key]; ok {
		return cv
	}
	if c.m == nil {
		c.m = make(map[any]*Curve)
	}
	cv := compute()
	c.m[key] = &cv
	return &cv
}

// Len returns the number of memoized curves.
func (c *CurveCache) Len() int { return len(c.m) }

// Reset drops every memoized curve while keeping the map's storage, so
// a cache can be re-scoped to a new (RM kind, model, alpha regime)
// without reallocating. Callers holding curves from before the reset
// may keep reading them — curves are immutable once published.
func (c *CurveCache) Reset() { clear(c.m) }
