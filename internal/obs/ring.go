package obs

import (
	"sync"
)

// Event is one traced simulation interval event as captured for
// streaming: the flattened sim.Event fields plus which spec of the job
// emitted it. The flattening keeps this package a leaf (no sim import)
// and gives the wire format plain fields.
type Event struct {
	// Spec and Name identify the scenario within the job's batch.
	Spec int
	Name string
	// The interval-boundary snapshot, as in sim.Event.
	TimeNs   float64
	Core     int
	Bench    string
	Interval int64
	Phase    int
	Freq     int
	Ways     int
	// Allocations is every core's LLC way allocation at this instant.
	// Ring slots own their backing arrays; Read deep-copies into the
	// caller's, so neither side aliases the other.
	Allocations []int
}

// Terminal frame kinds; the zero Terminal has Kind "".
const (
	// TerminalDone: every scenario of the job completed successfully.
	TerminalDone = "done"
	// TerminalFailed: the job finished with at least one scenario error.
	TerminalFailed = "failed"
	// TerminalExpired: the job's TTL expired. A stream can only observe
	// this for a job the GC dropped unfinished-by-terminal; finished
	// jobs close done/failed first and Close is first-writer-wins.
	TerminalExpired = "expired"
)

// Terminal is the frame that ends a stream.
type Terminal struct {
	Kind string
	// Err carries the job's joined error text for TerminalFailed.
	Err string
}

// Ring is a bounded producer/multi-consumer event buffer with
// overwrite-oldest semantics: Publish never blocks and never waits for
// consumers — a stalled subscriber loses the oldest events and observes
// exactly how many through its Cursor's Dropped counter. Memory is
// bounded by the capacity, slot backing arrays are reused, and the
// wakeup channel is allocated by waiting readers rather than the
// producer — so steady-state publishing allocates nothing, whether or
// not anyone is listening. All methods are concurrency-safe (publishes
// may also race each other).
type Ring struct {
	mu  sync.Mutex
	buf []Event
	// seq is the sequence number the next published event gets; the
	// buffer holds sequences [low, seq) where low = max(0, seq-len(buf)).
	seq  uint64
	term *Terminal
	// notify is non-nil only while at least one reader waits; Publish
	// and Close close it to wake them all.
	notify chan struct{}
}

// NewRing returns a ring holding the most recent capacity events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// copyEvent copies src into dst, reusing dst's Allocations backing.
func copyEvent(dst *Event, src *Event) {
	alloc := dst.Allocations
	*dst = *src
	dst.Allocations = append(alloc[:0], src.Allocations...)
}

// wake flips the waiters' channel under the held lock.
func (r *Ring) wake() {
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
}

// Publish appends one event, overwriting the oldest when full. It never
// blocks on consumers; after Close it is a no-op (a retried scenario of
// an otherwise-finished job must not resurrect a closed stream).
func (r *Ring) Publish(ev *Event) {
	r.mu.Lock()
	if r.term != nil {
		r.mu.Unlock()
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = r.buf[:len(r.buf)+1]
	}
	copyEvent(&r.buf[int(r.seq)%cap(r.buf)], ev)
	r.seq++
	r.wake()
	r.mu.Unlock()
}

// Close publishes the terminal frame and wakes every waiter. The first
// terminal wins; later Close calls are no-ops — the TTL GC can safely
// close a ring that job completion already closed.
func (r *Ring) Close(t Terminal) {
	r.mu.Lock()
	if r.term == nil {
		r.term = &t
		r.wake()
	}
	r.mu.Unlock()
}

// Closed reports whether a terminal frame has been published.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term != nil
}

// Cursor is one subscriber's read position. The zero value starts at
// the oldest buffered event. Dropped accumulates the events this
// subscriber lost to ring overwrites — the explicit signal that it was
// too slow for the producer.
type Cursor struct {
	next    uint64
	Dropped uint64
}

// Seq returns the sequence number of the next event the cursor will
// read (equivalently: how many events were published before it).
func (c *Cursor) Seq() uint64 { return c.next }

// Read copies pending events into dst (deep copies — dst slots reuse
// their own Allocations backing) and advances the cursor, charging any
// overwritten-unread events to Dropped. It returns how many events were
// copied and, once the ring is closed AND drained, the terminal frame.
// When both are empty (nothing pending, not closed) it instead returns
// a wait channel that the next Publish or Close closes — the caller
// selects on it against its own cancellation. Read never blocks.
func (r *Ring) Read(c *Cursor, dst []Event) (n int, term *Terminal, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	low := uint64(0)
	if r.seq > uint64(len(r.buf)) {
		low = r.seq - uint64(len(r.buf))
	}
	if c.next < low {
		c.Dropped += low - c.next
		c.next = low
	}
	for n < len(dst) && c.next < r.seq {
		copyEvent(&dst[n], &r.buf[int(c.next)%cap(r.buf)])
		n++
		c.next++
	}
	if n > 0 {
		return n, nil, nil
	}
	if r.term != nil {
		return 0, r.term, nil
	}
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return 0, nil, r.notify
}
