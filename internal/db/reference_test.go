package db

import (
	"strings"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// TestBuildMatchesReference is the sweep overhaul's correctness
// contract: the optimized build (shared annotation, warm-cloned ATDs,
// fifteen-lane walks) must produce a database bit-identical to the seed
// build for every record of every phase.
func TestBuildMatchesReference(t *testing.T) {
	benches := testBenches(t)[:2] // mcf (cache sensitive) and povray (compute bound)
	opts := Options{TraceLen: 8192, Warmup: 2048}
	fast, err := Build(benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		fp, rp := fast.Phases[b.Name], ref.Phases[b.Name]
		if len(fp) != len(rp) {
			t.Fatalf("%s: phase count %d vs %d", b.Name, len(fp), len(rp))
		}
		for p := range fp {
			if fp[p].Runs != rp[p].Runs {
				for ci := range fp[p].Runs {
					for k := range fp[p].Runs[ci] {
						for wi := range fp[p].Runs[ci][k] {
							if fp[p].Runs[ci][k][wi] != rp[p].Runs[ci][k][wi] {
								t.Fatalf("%s phase %d c=%d k=%d w=%d:\nfast %+v\nref  %+v",
									b.Name, p, ci, k, config.MinWays+wi,
									fp[p].Runs[ci][k][wi], rp[p].Runs[ci][k][wi])
							}
						}
					}
				}
			}
		}
	}
}

// TestStatsMatchesReference checks the dense-grid cache against the
// seed's per-call interpolation on the entire setting grid.
func TestStatsMatchesReference(t *testing.T) {
	d := sharedDB(t)
	for _, name := range []string{"mcf", "povray"} {
		for p := 0; p < d.NumPhases(name); p++ {
			for ci := 0; ci < config.NumSizes; ci++ {
				for fi := 0; fi < config.NumFreqs; fi++ {
					for w := config.MinWays; w <= config.MaxWays; w++ {
						set := config.Setting{Core: config.CoreSize(ci), Freq: fi, Ways: w}
						fast, err := d.Stats(name, p, set)
						if err != nil {
							t.Fatal(err)
						}
						ref, err := d.StatsReference(name, p, set)
						if err != nil {
							t.Fatal(err)
						}
						if *fast != *ref {
							t.Fatalf("%s phase %d %v:\ndense %+v\nref   %+v", name, p, set, *fast, *ref)
						}
					}
				}
			}
		}
	}
}

// TestBuildJoinsAllErrors checks that a build with several failing
// phases reports every failure, not just the first.
func TestBuildJoinsAllErrors(t *testing.T) {
	bad := func(name string) *bench.Benchmark {
		return &bench.Benchmark{
			Name:       name,
			TotalInstr: 1,
			Phases: []bench.Phase{
				{Params: trace.Params{LoadFrac: -1}, Weight: 1},
				{Params: trace.Params{LoadFrac: -1}, Weight: 1},
			},
		}
	}
	b := bad("badbench")
	if err := b.Validate(); err != nil {
		t.Skipf("synthetic benchmark rejected before build: %v", err)
	}
	_, err := Build([]*bench.Benchmark{b}, Options{TraceLen: 1024, Warmup: 256})
	if err == nil {
		t.Fatal("build of invalid phases must fail")
	}
	if n := strings.Count(err.Error(), "badbench"); n < 2 {
		t.Fatalf("want all phase errors joined, got %d mention(s): %v", n, err)
	}
}
