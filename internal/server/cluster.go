package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"qosrm/internal/client"
	"qosrm/internal/cluster"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/faultinject"
)

// Failpoints on the cluster paths, armed by the chaos tests and the CI
// smoke via QOSRM_FAILPOINTS:
//
//	cluster.gossip   one anti-entropy probe fails as if the network
//	                 dropped it (the failure detector sees a miss)
//	server.snapshot  GET /v1/snapshot answers 500 instead of streaming
//	cluster.fetch    a joining node's snapshot fetch from one seed fails
const (
	fpGossip   = "cluster.gossip"
	fpSnapshot = "server.snapshot"
	fpFetch    = "cluster.fetch"
)

// gossipProbeTimeout bounds one anti-entropy exchange; an unreachable
// peer must register as a missed probe quickly enough that the detector
// confirms it dead within a couple of rounds past SuspectTimeout.
const gossipProbeTimeout = 2 * time.Second

// gossipLoop drives the anti-entropy protocol: every GossipInterval the
// node exchanges member lists with each address it tracks. With no
// seeds and no members the loop is a no-op ticker — every node is
// always joinable, whether or not it was booted as part of a cluster.
func (s *Server) gossipLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.gossipRound(s.ctx)
		}
	}
}

// gossipRound runs one concurrent push-pull pass over the probe targets
// — live members, suspect members, dead members still within their TTL
// (how rejoins and healed partitions are noticed), and unresolved
// seeds.
func (s *Server) gossipRound(ctx context.Context) {
	targets := s.cluster.ProbeTargets()
	if len(targets) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, addr := range targets {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			s.exchangeWith(ctx, addr)
		}(addr)
	}
	wg.Wait()
}

// exchangeWith runs one push-pull exchange: POST this node's view to
// addr, merge the view it answers with. A failed exchange is a missed
// probe — the failure detector advances addr's member toward dead.
func (s *Server) exchangeWith(ctx context.Context, addr string) {
	if err := faultinject.Eval(fpGossip); err != nil {
		s.cluster.Fail(addr)
		s.metrics.clusterProbeFailures.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(ctx, gossipProbeTimeout)
	defer cancel()
	ex := &cluster.Exchange{From: s.cluster.Self(), Members: s.cluster.Snapshot()}
	t0 := time.Now()
	resp, err := s.forwarder.client(addr).ExchangeCluster(ctx, ex)
	s.metrics.gossipExchange.Observe(time.Since(t0))
	if err != nil {
		s.cluster.Fail(addr)
		s.metrics.clusterProbeFailures.Add(1)
		return
	}
	if s.cluster.Ack(addr, resp) {
		s.metrics.clusterRefutations.Add(1)
	}
	s.metrics.clusterExchanges.Add(1)
}

// handleClusterGet serves this node's membership view — the pull-only
// half of the anti-entropy protocol, also the observability surface
// (qosrmctl, dashboards) for cluster state.
func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, &cluster.Exchange{From: s.cluster.Self(), Members: s.cluster.Snapshot()})
}

// handleClusterPost is one push-pull gossip exchange: merge the
// sender's view, answer with this node's. A sender serving a different
// database build is refused with cluster_mismatch — admitting it would
// hand jobs to a node that computes different answers.
func (s *Server) handleClusterPost(w http.ResponseWriter, r *http.Request) {
	var ex cluster.Exchange
	if !s.readJSON(w, r, &ex) {
		return
	}
	if ex.From.ParamsHash != "" && ex.From.ParamsHash != s.paramsHash {
		s.failReason(w, http.StatusConflict, ReasonClusterMismatch,
			"node %s serves database %s; this node serves %s",
			ex.From.ID, ex.From.ParamsHash, s.paramsHash)
		return
	}
	if s.cluster.Ack(strings.TrimRight(ex.From.Addr, "/"), &ex) {
		s.metrics.clusterRefutations.Add(1)
	}
	s.writeJSON(w, &cluster.Exchange{From: s.cluster.Self(), Members: s.cluster.Snapshot()})
}

// handleSnapshot streams the database snapshot bytes in dbstore's
// versioned binary format — magic, version, params hash, CRC — exactly
// what Save writes to disk, so the fetching side verifies it with the
// unmodified dbstore loader.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Eval(fpSnapshot); err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := dbstore.Write(w, s.db); err != nil {
		// Headers are gone; all we can do is count it and cut the
		// stream, which the fetcher's CRC check turns into a clean
		// verification failure.
		s.metrics.errors.Add(1)
		return
	}
	s.metrics.snapshotsServed.Add(1)
}

// FetchSnapshot bootstraps a node that has no local snapshot: it asks
// each seed in turn for GET /v1/snapshot and verifies the bytes with
// the full dbstore loader — magic, version, checksum, structural
// bounds, and the params hash against this binary's own suite — before
// trusting a byte. The verified snapshot is persisted to path (atomic
// temp-and-rename; "" skips persisting) and the loaded database
// returned along with the seed that served it.
//
// A version or params-hash mismatch (dbstore.ErrVersion / ErrStale)
// refuses the join immediately instead of trying further seeds: every
// cluster node must serve the same database build, so a skewed snapshot
// means joining is itself wrong, not that this seed was unlucky.
func FetchSnapshot(ctx context.Context, path string, seeds []string) (*db.DB, string, error) {
	var lastErr error
	for _, seed := range seeds {
		seed = strings.TrimRight(strings.TrimSpace(seed), "/")
		if seed == "" {
			continue
		}
		if err := faultinject.Eval(fpFetch); err != nil {
			lastErr = fmt.Errorf("fetch snapshot from %s: %w", seed, err)
			continue
		}
		c := client.New(seed)
		c.MaxRetries = -1
		data, err := c.Snapshot(ctx)
		if err != nil {
			lastErr = fmt.Errorf("fetch snapshot from %s: %w", seed, err)
			continue
		}
		d, _, err := dbstore.Read(bytes.NewReader(data))
		if err != nil {
			lastErr = fmt.Errorf("snapshot from %s: %w", seed, err)
			if errors.Is(err, dbstore.ErrStale) || errors.Is(err, dbstore.ErrVersion) {
				return nil, "", lastErr
			}
			continue
		}
		if path != "" {
			if err := dbstore.AtomicWrite(path, func(f *os.File) error {
				_, werr := f.Write(data)
				return werr
			}); err != nil {
				return nil, "", fmt.Errorf("persist fetched snapshot: %w", err)
			}
		}
		return d, seed, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no seed to fetch a snapshot from")
	}
	return nil, "", lastErr
}
