package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
)

// RenderTableI prints the baseline configuration (Table I), annotated
// with the representative-region scaling of this reproduction.
func RenderTableI(w io.Writer) {
	fmt.Fprintln(w, "TABLE I: Baseline configuration")
	fmt.Fprintln(w, "Core: out-of-order, branch predictor: Pentium M type")
	fmt.Fprintf(w, "  %-14s %6s %6s %6s\n", "", "L", "M", "S")
	row := func(name string, f func(config.CoreParams) int) {
		fmt.Fprintf(w, "  %-14s %6d %6d %6d\n", name,
			f(config.Core(config.SizeL)), f(config.Core(config.SizeM)), f(config.Core(config.SizeS)))
	}
	row("issue width", func(p config.CoreParams) int { return p.IssueWidth })
	row("ROB", func(p config.CoreParams) int { return p.ROB })
	row("RS", func(p config.CoreParams) int { return p.RS })
	row("LSQ", func(p config.CoreParams) int { return p.LSQ })
	fmt.Fprintln(w, "Cache: 64B blocks, LRU replacement")
	fmt.Fprintf(w, "  %-22s %-10s %-10s %-16s\n", "", "L1-I/L1-D", "L2", "L3")
	fmt.Fprintf(w, "  %-22s %-10s %-10s %-16s\n", "sharing", "private", "private", "shared")
	fmt.Fprintf(w, "  %-22s %-10s %-10s %-16s\n", "size (represented)",
		"32 KB", "256 KB", fmt.Sprintf("2 MB × cores"))
	fmt.Fprintf(w, "  %-22s %-10s %-10s %-16s\n", "size (simulated)",
		fmt.Sprintf("%d B", config.L1Bytes), fmt.Sprintf("%d B", config.L2Bytes),
		fmt.Sprintf("%d B × cores", config.L3BytesPerCore))
	fmt.Fprintf(w, "  %-22s %-10d %-10d %-16s\n", "associativity",
		config.L1Ways, config.L2Ways, fmt.Sprintf("%d × cores", config.L3WaysPerCore))
	fmt.Fprintf(w, "  %-22s %-10s %-10s %d–%d ways (%s)\n", "allowed range/core", "-", "-",
		config.MinWays, config.MaxWays, "256 KB–4 MB represented")
	fmt.Fprintf(w, "  memory-system scale: 1/%d (see DESIGN.md)\n", config.MemScale)
	fmt.Fprintf(w, "DRAM: %.0f ns base latency, contention queue model, 5 GB/s per core\n",
		config.DRAMLatencyNs)
	fmt.Fprintf(w, "DVFS: core %.2f GHz baseline, %.2f–%.2f GHz range, %.2f–%.2f V, global 2 GHz/1 V\n",
		config.FBaseGHz, config.FMinGHz, config.FMaxGHz, config.VMin, config.VMax)
}

// TableIIRow is one application's classification evidence.
type TableIIRow struct {
	Name     string
	Intended bench.Category
	Measured bench.Category
	M        db.Measurement
}

// TableII classifies the whole suite with the Section IV-C rules and
// reports both the intended (paper, Table II) and measured category.
func (c *Context) TableII() ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, b := range bench.Suite() {
		cat, m, err := c.DB.Classify(b)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIRow{Name: b.Name, Intended: b.Category, Measured: cat, M: m})
	}
	return rows, nil
}

// RenderTableII prints the classification table grouped by category.
func RenderTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "TABLE II: Application categories (measured with Section IV-C rules)")
	match := 0
	for _, cat := range bench.Categories {
		fmt.Fprintf(w, "%s:", cat)
		for _, r := range rows {
			if r.Measured == cat {
				fmt.Fprintf(w, " %s", r.Name)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-6s %-6s  %22s  %20s\n",
		"app", "paper", "meas", "MPKI(4w/8w/12w)", "MLP(S/M/L)")
	for _, r := range rows {
		ok := " "
		if r.Intended == r.Measured {
			match++
		} else {
			ok = "!"
		}
		fmt.Fprintf(w, "%-12s %-6s %-6s%s %7.2f %6.2f %6.2f  %6.2f %6.2f %6.2f\n",
			r.Name, r.Intended, r.Measured, ok,
			r.M.MPKI4, r.M.MPKI8, r.M.MPKI12, r.M.MLPS, r.M.MLPM, r.M.MLPL)
	}
	fmt.Fprintf(w, "%d/%d match the paper's Table II\n", match, len(rows))
}
