// Service client: the serving layer end to end in one process. The
// example opens a system with a snapshot path — the first run builds
// the database and saves the snapshot, every later run cold-starts by
// loading it (the same files cmd/dbgen emits and cmd/qosrmd boots
// from) — mounts the qosrmd API server on a loopback listener, then
// talks to it purely through the HTTP client: health, a savings
// evaluation, a synchronous scenario run, and an asynchronous sweep job
// tailed live over its interval-event stream, then polled to
// completion.
//
// Against a separately deployed daemon, replace the embedded server
// with qosrm.DialService("http://host:8423") and keep the rest.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	// A snapshot beside the cache dir: run the example twice to see the
	// cold start switch from "build" to "load".
	cache, err := os.UserCacheDir()
	if err != nil {
		cache = os.TempDir()
	}
	snapshot := filepath.Join(cache, "qosrm-service-example.qosdb")

	apps := []string{"mcf", "povray", "bwaves", "xalancbmk"}
	benches := make([]*qosrm.Benchmark, len(apps))
	for i, n := range apps {
		benches[i] = qosrm.MustBenchmark(n)
	}
	start := time.Now()
	sys, err := qosrm.Open(qosrm.Options{
		TraceLen:     16384,
		Warmup:       4096,
		Benchmarks:   benches,
		SnapshotPath: snapshot,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database ready in %s (snapshot: %s)\n",
		time.Since(start).Round(time.Millisecond), snapshot)

	// Mount the qosrmd API on a loopback listener, with a job journal
	// beside the snapshot: submitted sweeps survive a crash of this
	// process (see the crash-recovery walkthrough below).
	journal := filepath.Join(cache, "qosrm-service-example.jnl")
	srv, err := sys.NewServer(qosrm.ServerOptions{Workers: 2, JournalPath: journal})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx := context.Background()
	client, err := qosrm.DialService("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	health, err := client.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected: %d benchmarks / %d phases served\n\n", health.Benchmarks, health.Phases)

	// A savings evaluation over the wire.
	sav, err := client.Savings(ctx, &qosrm.SavingsRequest{Apps: apps, RM: "RM3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RM3 on %v: saving %.2f%%, %d RM calls, violations %.2f%%\n\n",
		apps, sav.Saving*100, sav.RMCalled, sav.ViolationRate*100)

	// A synchronous scenario run: bit-identical to sys.RunScenario.
	const work = 4 * 100_000_000 * 2048
	spec := qosrm.ScenarioSpec{
		Name: "service-churn",
		Cores: []qosrm.ScenarioCore{
			{Jobs: []qosrm.ScenarioJob{
				{App: "mcf", Work: work, DepartNs: 2.5e8},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []qosrm.ScenarioJob{{App: "bwaves", Work: work}}},
		},
	}
	rep, err := client.RunScenario(ctx, &spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q over HTTP: saving %.2f%% across %d jobs\n\n",
		rep.Name, rep.Saving*100, len(rep.Jobs))

	// An asynchronous sweep: every manager on the same scenario.
	specs := []qosrm.ScenarioSpec{spec, spec, spec}
	specs[0].Name, specs[0].RM = "sweep-rm1", "RM1"
	specs[1].Name, specs[1].RM = "sweep-rm2", "RM2"
	specs[2].Name, specs[2].RM = "sweep-rm3", "RM3"
	job, err := client.SubmitSweep(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s queued (%d scenarios)\n", job.ID, job.Total)

	// Tail the job live: GET /v1/jobs/{id}/events streams one frame per
	// interval boundary of the running simulations — the same events a
	// SimConfig.Trace callback sees in process — until a terminal frame.
	// A dashboard would render these; here the first few are printed and
	// the rest counted.
	stream, err := client.JobEvents(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	intervals := 0
	for {
		ev, err := stream.Next()
		if err != nil {
			log.Fatal(err) // the terminal frame arrives before io.EOF
		}
		if ev.Type != "interval" {
			fmt.Printf("  ... %d interval events in all (%d dropped), stream closed: %s\n",
				intervals, ev.Dropped, ev.Type)
			break
		}
		if intervals < 3 {
			fmt.Printf("  [%s] t=%.2gns core %d %s interval %d: freq %d, %d ways\n",
				ev.Name, ev.TimeNs, ev.Core, ev.Bench, ev.Interval, ev.Freq, ev.Ways)
		}
		intervals++
	}
	stream.Close()

	job, err = client.WaitJob(ctx, job.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range job.Reports {
		fmt.Printf("  %-4s saving %6.2f%%  budget-violations %5.2f%%\n",
			r.RM, r.Saving*100, r.BudgetViolationRate*100)
	}

	// Crash-recovery walkthrough. The sweep above was journaled: its
	// submit event was fsynced before the server acknowledged it, and
	// each report was appended as it completed. Kill the server (a real
	// SIGKILL mid-sweep leaves the same journal state — submits and any
	// finishes that already landed) and boot a fresh one on the same
	// journal: the job is still there under the same ID, its reports
	// served from the log without recomputation; had scenarios still
	// been pending, the new server would re-enqueue and re-run them to
	// bit-identical reports (the engine is deterministic).
	fmt.Println("\nsimulating a crash: killing the server...")
	hs.Close()
	srv.Close()

	srv2, err := sys.NewServer(qosrm.ServerOptions{Workers: 2, JournalPath: journal})
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()
	client2, err := qosrm.DialService("http://" + ln2.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := client2.WaitJob(ctx, job.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart: job %s is %s with %d/%d reports — recovered from the journal\n",
		recovered.ID, recovered.State, len(recovered.Reports), recovered.Total)

	// And the submit itself is safe to retry across the crash: the
	// job's idempotency key (SubmitSweep attaches one automatically,
	// echoed in Key) maps to the same job on the restarted server
	// instead of queuing the sweep twice.
	again, err := client2.SubmitSweepKey(ctx, specs, recovered.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-submitting under key %q returns job %s — no duplicate work\n", recovered.Key, again.ID)
}
