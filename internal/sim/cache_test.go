package sim

import (
	"testing"

	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

// TestCurveCacheEquivalence is the RM-path overhaul's correctness
// contract: with the per-run curve cache and workspace reduction, every
// co-simulation outcome must be identical to the seed behaviour of
// recomputing Localize at every interval boundary — across all RM
// kinds, models, the perfect oracle, and a relaxed alpha.
func TestCurveCacheEquivalence(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "mcf", "xalancbmk", "libquantum", "omnetpp")
	configs := []Config{
		{RM: rm.RM1, Model: perfmodel.Model1},
		{RM: rm.RM2, Model: perfmodel.Model2},
		{RM: rm.RM3, Model: perfmodel.Model3},
		{RM: rm.RM3, Model: perfmodel.Model3, Alpha: 1.3},
		{RM: rm.RM3, Perfect: true},
		{RM: rm.RM2, Model: perfmodel.Model3, DisableOverheads: true},
		{RM: rm.RM3, Model: perfmodel.Model3, GreedyGlobal: true},
	}
	for _, cfg := range configs {
		cached, err := Run(d, w, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", cfg.RM, cfg.Model, err)
		}
		plain := cfg
		plain.noCurveCache = true
		ref, err := Run(d, w, plain)
		if err != nil {
			t.Fatalf("%v/%v (no cache): %v", cfg.RM, cfg.Model, err)
		}
		if cached.EnergyJ != ref.EnergyJ || cached.TimeNs != ref.TimeNs ||
			cached.RMCalled != ref.RMCalled || cached.UncoreJ != ref.UncoreJ {
			t.Fatalf("%v/%v perfect=%v: cached run diverges: %+v vs %+v",
				cfg.RM, cfg.Model, cfg.Perfect, cached, ref)
		}
		for i := range cached.Apps {
			if cached.Apps[i] != ref.Apps[i] {
				t.Fatalf("%v/%v app %d diverges:\ncached %+v\nplain  %+v",
					cfg.RM, cfg.Model, i, cached.Apps[i], ref.Apps[i])
			}
		}
	}
}
