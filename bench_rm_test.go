package qosrm

import (
	"testing"

	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

// benchmarkRMWork measures Localize + GlobalOptimize for an 8-core
// system, the per-invocation cost the paper bounds at 100K instructions
// (Section III-E).
func benchmarkRMWork(b *testing.B) {
	ctx := benchContext(b)
	st, err := ctx.DB.Stats("mcf", 0, config.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	pred := &rm.ModelPredictor{
		Stats: perfmodel.FromDB(st, config.Baseline()),
		Model: perfmodel.Model3,
	}
	const cores = 8
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curves := make([]*rm.Curve, cores)
		for j := range curves {
			cv := rm.Localize(pred, rm.RM3, rm.Options{})
			curves[j] = &cv
		}
		if _, ok := rm.GlobalOptimize(curves, config.TotalWays(cores)); !ok {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkATDAccess measures the proposed ATD extension's per-access
// cost (45 leading-miss counters updated per observed LLC access).
func BenchmarkATDAccess(b *testing.B) {
	benchmarkATD(b)
}
