package loadgen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopAccounting: every launched arrival is accounted exactly
// once (ok + rejected + errors + dropped = sent), classification
// follows the attack's outcomes, and the derived rates are consistent.
func TestOpenLoopAccounting(t *testing.T) {
	var n atomic.Int64
	res := Run(context.Background(), Config{
		Name:     "unit",
		RPS:      2000,
		Duration: 100 * time.Millisecond,
		Attack: func(ctx context.Context) Outcome {
			// Every third request rejected, every seventh forwarded.
			i := n.Add(1)
			if i%3 == 0 {
				return Outcome{Rejected: true}
			}
			return Outcome{Forwarded: i%7 == 0}
		},
	})
	if res.Sent == 0 {
		t.Fatal("open loop launched nothing")
	}
	if got := res.OK + res.Rejected + res.Errors + res.Dropped; got != res.Sent {
		t.Fatalf("accounting leak: ok %d + rejected %d + errors %d + dropped %d != sent %d",
			res.OK, res.Rejected, res.Errors, res.Dropped, res.Sent)
	}
	if res.Rejected == 0 || res.Forwarded == 0 {
		t.Fatalf("classification lost outcomes: %+v", res)
	}
	if res.RejectRate <= 0 || res.RejectRate >= 1 {
		t.Fatalf("reject rate %v out of range", res.RejectRate)
	}
	if res.AchievedRPS <= 0 {
		t.Fatalf("achieved RPS %v", res.AchievedRPS)
	}
	if res.P99Ms < res.P50Ms {
		t.Fatalf("p99 %vms below p50 %vms", res.P99Ms, res.P50Ms)
	}
}

// TestOpenLoopShedsAtInflightCap: with a slow attack and a tiny cap the
// generator drops arrivals instead of queueing them — the open loop
// stays open.
func TestOpenLoopShedsAtInflightCap(t *testing.T) {
	res := Run(context.Background(), Config{
		Name:        "cap",
		RPS:         500,
		Duration:    100 * time.Millisecond,
		MaxInflight: 1,
		Attack: func(ctx context.Context) Outcome {
			time.Sleep(20 * time.Millisecond)
			return Outcome{}
		},
	})
	if res.Dropped == 0 {
		t.Fatalf("saturated generator queued instead of dropping: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
}

// TestRunHonoursContext: a cancelled context ends the attack early.
func TestRunHonoursContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	Run(ctx, Config{
		RPS:      100,
		Duration: 10 * time.Second,
		Attack:   func(ctx context.Context) Outcome { return Outcome{} },
	})
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled run kept attacking")
	}
}
