package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

func TestNewPartitionedLLC(t *testing.T) {
	if _, err := NewPartitionedLLC(0); err == nil {
		t.Error("zero cores must fail")
	}
	for _, n := range []int{1, 2, 4, 8} {
		p, err := NewPartitionedLLC(n)
		if err != nil {
			t.Fatalf("NewPartitionedLLC(%d): %v", n, err)
		}
		if p.Ways() != config.TotalWays(n) {
			t.Errorf("%d cores: ways %d, want %d", n, p.Ways(), config.TotalWays(n))
		}
		if p.Cores() != n {
			t.Errorf("Cores() = %d, want %d", p.Cores(), n)
		}
		alloc := p.Allocation()
		for c, w := range alloc {
			if w != config.BaseWays {
				t.Errorf("core %d initial allocation %d, want %d", c, w, config.BaseWays)
			}
		}
	}
}

func TestSetAllocationValidation(t *testing.T) {
	p, _ := NewPartitionedLLC(2)
	if err := p.SetAllocation([]int{10, 6}); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	bad := [][]int{
		{8, 8, 8}, // wrong core count
		{1, 15},   // below MinWays
		{17, -1},  // above MaxWays
		{8, 9},    // wrong sum
		{12, 12},  // wrong sum (over)
	}
	for _, b := range bad {
		if err := p.SetAllocation(b); err == nil {
			t.Errorf("allocation %v should be rejected", b)
		}
	}
}

func TestPartitionedBasicHitMiss(t *testing.T) {
	p, _ := NewPartitionedLLC(2)
	if p.Access(0, 0) {
		t.Fatal("cold access must miss")
	}
	if !p.Access(0, 0) {
		t.Fatal("re-access must hit")
	}
	// A different core hits a block the first core brought in.
	if !p.Access(1, 0) {
		t.Fatal("cross-core hit must be allowed")
	}
	if p.Accesses(0) != 2 || p.Misses(0) != 1 {
		t.Fatalf("core0 stats %d/%d", p.Accesses(0), p.Misses(0))
	}
	if p.Accesses(1) != 1 || p.Misses(1) != 0 {
		t.Fatalf("core1 stats %d/%d", p.Accesses(1), p.Misses(1))
	}
}

// TestPartitionEnforcement verifies that a core's resident blocks in a
// set converge to its allocation under steady conflict traffic.
func TestPartitionEnforcement(t *testing.T) {
	p, _ := NewPartitionedLLC(2) // 16 ways per set
	if err := p.SetAllocation([]int{4, 12}); err != nil {
		t.Fatal(err)
	}
	sets := uint64(config.L3BytesPerCore * 2 / config.BlockBytes / p.Ways())
	stride := sets * config.BlockBytes // same-set conflict stride
	// Both cores stream conflicting blocks into set 0.
	for i := 0; i < 2000; i++ {
		p.Access(0, uint64(2*i)*stride)
		p.Access(1, uint64(2*i+1)*stride)
	}
	// Steady state: core 0 holds ≤ 4 blocks of set 0. Re-access the last
	// 4 blocks core 0 filled: they must all still be resident; a fifth
	// must not be.
	hits := 0
	for i := 1996; i < 2000; i++ {
		if p.Access(0, uint64(2*i)*stride) {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("core 0 retained %d of its last 4 blocks, want 4", hits)
	}
	if p.Access(0, uint64(2*1994)*stride) {
		t.Error("core 0 should not retain more blocks than its allocation")
	}
}

// TestPartitionIsolation: with a fixed partition, one core's streaming
// cannot evict another core's resident working set.
func TestPartitionIsolation(t *testing.T) {
	p, _ := NewPartitionedLLC(2)
	if err := p.SetAllocation([]int{8, 8}); err != nil {
		t.Fatal(err)
	}
	sets := uint64(config.L3BytesPerCore * 2 / config.BlockBytes / p.Ways())
	stride := sets * config.BlockBytes
	// Core 0 installs 8 blocks in set 0 (exactly its share).
	for i := uint64(0); i < 8; i++ {
		p.Access(0, i*stride)
	}
	// Core 1 streams 10_000 conflicting blocks through the same set.
	for i := uint64(100); i < 10_100; i++ {
		p.Access(1, i*stride)
	}
	// Core 0's blocks must all still hit.
	for i := uint64(0); i < 8; i++ {
		if !p.Access(0, i*stride) {
			t.Fatalf("core 0 block %d evicted by core 1's streaming", i)
		}
	}
}

// TestPartitionRepartitioning: shrinking a core's allocation lets the
// other core take over the ways without an explicit flush.
func TestPartitionRepartitioning(t *testing.T) {
	p, _ := NewPartitionedLLC(2)
	sets := uint64(config.L3BytesPerCore * 2 / config.BlockBytes / p.Ways())
	stride := sets * config.BlockBytes
	for i := uint64(0); i < 8; i++ {
		p.Access(0, i*stride)
	}
	if err := p.SetAllocation([]int{2, 14}); err != nil {
		t.Fatal(err)
	}
	// Core 1 fills its enlarged share.
	for i := uint64(100); i < 114; i++ {
		p.Access(1, i*stride)
	}
	hits := 0
	for i := uint64(100); i < 114; i++ {
		if p.Access(1, i*stride) {
			hits++
		}
	}
	if hits != 14 {
		t.Errorf("core 1 retained %d of 14 blocks after repartition", hits)
	}
}

// TestPartitionNeverLosesBlocks is a conservation property: the number
// of resident blocks per set never exceeds the associativity, and
// occupancy bookkeeping matches the owner array.
func TestPartitionOccupancyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := NewPartitionedLLC(2)
		alloc := []int{4 + rng.Intn(9), 0}
		alloc[1] = 16 - alloc[0]
		if alloc[1] < config.MinWays || alloc[1] > config.MaxWays {
			alloc = []int{8, 8}
		}
		if err := p.SetAllocation(alloc); err != nil {
			return false
		}
		for i := 0; i < 5000; i++ {
			core := rng.Intn(2)
			addr := uint64(rng.Intn(4096)) * config.BlockBytes
			p.Access(core, addr)
		}
		// Cross-check occupancy counters against owner tags.
		sets := config.L3BytesPerCore * 2 / config.BlockBytes / p.ways
		for s := 0; s < sets; s++ {
			counts := make([]int16, p.cores)
			for w := 0; w < p.ways; w++ {
				if o := p.owner[s*p.ways+w]; o >= 0 {
					counts[o]++
				}
			}
			for c := 0; c < p.cores; c++ {
				if counts[c] != p.occupancy[s*p.cores+c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
