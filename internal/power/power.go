// Package power models core, memory and uncore energy, playing the role
// McPAT plays in the paper's toolchain.
//
// The model follows the paper's energy formulation (Section III-D):
//
//   - Core dynamic energy is activity-based: every retired instruction
//     costs epi(c)·(V/V₀)² joules, where epi grows sub-linearly with core
//     size (idle structures of a large core are clock gated, so an L core
//     does not cost 4× an S core per instruction, even though it has 4×
//     the resources). Because dynamic energy is charged per instruction,
//     dynamic *power* automatically scales with V²·f as in Eq. 4.
//   - Core static power is constant in time for a given (size, VF) pair
//     and can be "measured offline" (Section III-D); here it is a table:
//     linear in core size and proportional to supply voltage.
//   - Each DRAM access costs a fixed EMemAccessJ.
//   - The uncore (shared LLC + NoC) draws constant power until the end of
//     the co-simulation (Section IV-D1).
package power

import "qosrm/internal/config"

// Core dynamic energy per instruction at the baseline voltage V₀ = 1 V,
// in joules. Sub-linear in core size: the marginal cost of the extra
// issue/ROB/LSQ capacity is partially hidden by clock gating.
var epiDynJ = [config.NumSizes]float64{
	config.SizeS: 0.48e-9,
	config.SizeM: 0.60e-9,
	config.SizeL: 0.78e-9,
}

// Core static (leakage) power at V₀ = 1 V, in watts. Leakage scales
// roughly linearly with the amount of powered-on silicon, so doubling
// the core roughly doubles it; power gating of deactivated sections
// (Section III-E) is what makes the S and M configurations cheaper.
// Absolute levels keep leakage at roughly a quarter of baseline core
// energy, so that the paper's core-size-vs-VF trade-off exists: growing
// the core costs roughly linearly while raising VF costs quadratically.
var staticW = [config.NumSizes]float64{
	config.SizeS: 0.19,
	config.SizeM: 0.25,
	config.SizeL: 0.36,
}

// EMemAccessJ is the energy of a single off-chip memory access (e_mem in
// Eq. 5): one 64-byte DRAM line transfer including DRAM core and I/O.
const EMemAccessJ = 8e-9

// UncoreLLCSliceW is the static power of one 2 MB LLC slice and
// UncoreNoCPerCoreW the network-on-chip power per core. Together they
// form the "un-core (LLC and network-on-chip) energy" term of
// Section IV-D1, charged until the end of the co-simulation.
const (
	UncoreLLCSliceW   = 0.06
	UncoreNoCPerCoreW = 0.04
)

// DynEnergyJ returns the core dynamic energy of executing n instructions
// on core size c at supply voltage v.
func DynEnergyJ(c config.CoreSize, v float64, n int64) float64 {
	r := v / config.VBase
	return epiDynJ[c] * r * r * float64(n)
}

// EPIDynJ returns the dynamic energy per instruction of core size c at
// voltage v. Exposed so the online energy model can "sample" dynamic
// power the way Eq. 4 assumes.
func EPIDynJ(c config.CoreSize, v float64) float64 {
	r := v / config.VBase
	return epiDynJ[c] * r * r
}

// StaticPowerW returns the core static power of size c when running at
// frequency fGHz. Leakage is proportional to the supply voltage needed
// for that frequency.
func StaticPowerW(c config.CoreSize, fGHz float64) float64 {
	return staticW[c] * config.Voltage(fGHz) / config.VBase
}

// UncorePowerW returns the constant uncore power of an n-core system:
// n LLC slices plus n NoC stops.
func UncorePowerW(n int) float64 {
	return float64(n) * (UncoreLLCSliceW + UncoreNoCPerCoreW)
}

// MemEnergyJ returns the DRAM energy of n line accesses.
func MemEnergyJ(n int64) float64 { return float64(n) * EMemAccessJ }

// CoreEnergyJ returns the total core energy of executing n instructions
// over t nanoseconds on size c at DVFS grid index f: dynamic plus static.
func CoreEnergyJ(c config.CoreSize, f int, n int64, tNs float64) float64 {
	fGHz := config.FreqGHz(f)
	v := config.Voltage(fGHz)
	return DynEnergyJ(c, v, n) + StaticPowerW(c, fGHz)*tNs*1e-9
}
