package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/bench"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/sim"
)

// Fig5Result is a prefix of the co-simulator's event stream for a small
// two-application workload, illustrating the Figure 5 mechanics: each
// core completes intervals at its own pace, and the RM is invoked on the
// completing core at every boundary.
type Fig5Result struct {
	Apps   []string
	Events []sim.Event
}

// Fig5 runs a short two-core co-simulation and captures the first
// interval-boundary events.
func (c *Context) Fig5(maxEvents int) (*Fig5Result, error) {
	if maxEvents <= 0 {
		maxEvents = 16
	}
	b1, err := bench.ByName("mcf")
	if err != nil {
		return nil, err
	}
	b2, err := bench.ByName("povray")
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Apps: []string{b1.Name, b2.Name}}
	cfg := c.simConfig(rm.RM3, perfmodel.Model3, false, false)
	cfg.Trace = func(e sim.Event) {
		if len(res.Events) < maxEvents {
			// Event.Allocations is only valid during the callback; copy
			// before retaining.
			e.Allocations = append([]int(nil), e.Allocations...)
			res.Events = append(res.Events, e)
		}
	}
	if _, err := sim.Run(c.DB, []*bench.Benchmark{b1, b2}, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// RenderFig5 prints the event prefix.
func RenderFig5(w io.Writer, r *Fig5Result) {
	fmt.Fprintln(w, "FIGURE 5: co-simulator run-time behaviour (first interval boundaries)")
	fmt.Fprintf(w, "workload: %v; RM3/Model3 with overheads\n", r.Apps)
	fmt.Fprintf(w, "%10s  %4s %-10s %8s %5s  %s\n", "t (ms)", "core", "app", "interval", "phase", "setting")
	for _, e := range r.Events {
		fmt.Fprintf(w, "%10.3f  %4d %-10s %8d %5d  %s\n",
			e.TimeNs/1e6, e.Core, e.Bench, e.Interval, e.Phase, e.Setting)
	}
}
