package cache

import "qosrm/internal/config"

// Writeback tracking on the LRU stack.
//
// A write-back LLC emits one DRAM write when a dirty line is evicted.
// Which evictions occur depends on the allocation w, but LRU inclusion
// lets a single pass track all allocations at once: each resident block
// carries a bitmask with one dirty bit per allocation size. When a block
// is touched at recency position p it has, in every cache of fewer than
// p ways, been evicted and refetched since its last touch — so any dirty
// bits below p are collected as writebacks and cleared. When a block is
// pushed off the tracked stack entirely, its remaining dirty bits are
// folded into the evicting access's writeback mask (the writes happened
// at each allocation's own earlier eviction; attributing them to the
// push-out keeps exact per-allocation counts with a bounded timing
// skew).

// wayMask has bit w-1 set for every tracked allocation w.
const wayMask = 1<<config.MaxWays - 1

// AccessRW is Access with store semantics and per-allocation writeback
// detection. The wb mask has bit w-1 set for every allocation w whose
// cache wrote a block back to DRAM as a consequence of this access's
// history (this block's earlier dirty evictions, plus any dirty bits of
// a block this access pushes off the stack tail).
func (s *LRUStack) AccessRW(addr uint64, write bool) (pos int, wb uint32) {
	tag := addr & s.blockMask
	base := int((addr>>s.setShift)&s.setMask) * s.ways
	row := s.tags[base : base+s.ways]
	val := s.valid[base : base+s.ways]
	dirty := s.dirtyRow(base)

	for i := 0; i < s.ways; i++ {
		if val[i] && row[i] == tag {
			pos = i + 1
			d := dirty[i]
			// Allocations smaller than pos evicted the block since its
			// last touch; their dirty copies were written back then.
			below := uint32(1<<(pos-1) - 1)
			wb = d & below
			d &^= below
			if write {
				d = wayMask
			}
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			copy(dirty[1:], dirty[:i])
			row[0], val[0], dirty[0] = tag, true, d
			return pos, wb
		}
	}
	// Full miss: harvest the departing tail block's remaining dirty
	// copies, then fill at MRU.
	if val[s.ways-1] {
		wb = dirty[s.ways-1]
	}
	copy(row[1:], row[:s.ways-1])
	copy(val[1:], val[:s.ways-1])
	copy(dirty[1:], dirty[:s.ways-1])
	var d uint32
	if write {
		d = wayMask
	}
	row[0], val[0], dirty[0] = tag, true, d
	return 0, wb
}

// dirtyRow returns the per-set dirty-mask row, allocating lazily so
// read-only users of LRUStack pay nothing.
func (s *LRUStack) dirtyRow(base int) []uint32 {
	if s.dirty == nil {
		s.dirty = make([]uint32, len(s.tags))
	}
	return s.dirty[base : base+s.ways]
}

// ResidualDirty counts dirty blocks still resident per allocation,
// indexed by w-1; a phase-end accounting adds these as eventual
// writebacks.
func (s *LRUStack) ResidualDirty() [config.MaxWays]int64 {
	var out [config.MaxWays]int64
	if s.dirty == nil {
		return out
	}
	for i, d := range s.dirty {
		if !s.valid[i] {
			continue
		}
		for w := 0; w < config.MaxWays; w++ {
			if d&(1<<w) != 0 {
				out[w]++
			}
		}
	}
	return out
}
