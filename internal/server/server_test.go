package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/rm"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

func sharedDB(t *testing.T) *db.DB {
	t.Helper()
	once.Do(func() {
		var benches []*bench.Benchmark
		for _, n := range []string{"mcf", "povray", "bwaves"} {
			b, err := bench.ByName(n)
			if err != nil {
				dbErr = err
				return
			}
			benches = append(benches, b)
		}
		shared, dbErr = db.Build(benches, db.Options{TraceLen: 8192, Warmup: 2048})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return shared
}

// newTestServer boots a server + httptest frontend over the shared
// database and tears both down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(sharedDB(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON posts a JSON body and decodes a JSON response into out.
func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// testSpec is a small churn scenario over the shared database.
func testSpec(name string) scenario.Spec {
	const work = 3 * 100_000_000 * 2048
	return scenario.Spec{
		Name: name,
		RM:   "RM3",
		Cores: []scenario.CoreSpec{
			{Jobs: []scenario.JobSpec{
				{App: "mcf", Work: work, DepartNs: 2e8},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []scenario.JobSpec{
				{App: "bwaves", Work: work},
			}},
		},
		Steps: []scenario.StepSpec{{AtNs: 2.5e8, Alpha: 1.1}},
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var h Health
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" || h.Benchmarks != 3 || h.TraceLen != 8192 {
		t.Fatalf("unexpected health %+v", h)
	}
}

// TestSavingsMatchesInProcess is the API-vs-library equivalence check
// for the savings path: the HTTP response must carry exactly the
// numbers the in-process simulation produces, bit for bit (JSON float64
// round-trips are exact with Go's shortest-form encoder).
func TestSavingsMatchesInProcess(t *testing.T) {
	d := sharedDB(t)
	_, ts := newTestServer(t, Options{})

	var got SavingsResponse
	code, raw := postJSON(t, ts.URL+"/v1/savings",
		SavingsRequest{Apps: []string{"mcf", "povray"}, RM: "RM3"}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}

	apps := []*bench.Benchmark{mustBench(t, "mcf"), mustBench(t, "povray")}
	cfg := sim.Config{RM: rm.RM3}
	idleCfg := cfg
	idleCfg.RM = rm.Idle
	idle, err := sim.Run(d, apps, idleCfg)
	if err != nil {
		t.Fatal(err)
	}
	managed, err := sim.Run(d, apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := SavingsResponse{
		Policy:        rm.PolicyModel3,
		Saving:        1 - managed.EnergyJ/idle.EnergyJ,
		EnergyJ:       managed.EnergyJ,
		IdleEnergyJ:   idle.EnergyJ,
		TimeNs:        managed.TimeNs,
		RMCalled:      managed.RMCalled,
		ViolationRate: managed.ViolationRate(),
		Apps:          managed.Apps,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP savings differ from in-process run:\n got %+v\nwant %+v", got, want)
	}
}

// TestScenarioMatchesInProcess is the acceptance equivalence: a
// scenario run through the HTTP API returns a report bit-identical to
// scenario.Run on the same spec.
func TestScenarioMatchesInProcess(t *testing.T) {
	d := sharedDB(t)
	_, ts := newTestServer(t, Options{})
	spec := testSpec("http-equiv")

	var got scenario.Report
	code, raw := postJSON(t, ts.URL+"/v1/scenarios", &spec, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	want, err := scenario.Run(d, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("HTTP scenario report differs from in-process run:\n got %+v\nwant %+v", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 2048})

	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"unknown app", "/v1/savings", `{"apps":["nosuch"]}`, 400},
		{"no apps", "/v1/savings", `{"apps":[]}`, 400},
		{"unknown rm", "/v1/savings", `{"apps":["mcf"],"rm":"RM9"}`, 400},
		{"unknown field", "/v1/savings", `{"apps":["mcf"],"turbo":true}`, 400},
		{"malformed", "/v1/savings", `{"apps":`, 400},
		{"trailing", "/v1/savings", `{"apps":["mcf"]}{"again":1}`, 400},
		{"scenario no cores", "/v1/scenarios", `{"name":"x","cores":[]}`, 400},
		{"scenario bad app", "/v1/scenarios", `{"name":"x","cores":[{"jobs":[{"app":"nosuch"}]}]}`, 400},
		{"jobs empty", "/v1/jobs", `{"specs":[]}`, 400},
		{"oversized", "/v1/scenarios", `{"name":"` + strings.Repeat("x", 4096) + `"}`, 413},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: missing error envelope: %s", tc.name, body)
		}
	}

	// Method mismatches: the mux serves 405 for wrong-method requests.
	resp, err := http.Get(ts.URL + "/v1/savings")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/savings: status %d, want 405", resp.StatusCode)
	}
}

// TestJobLifecycle submits an async sweep, polls it to completion and
// checks the reports match an in-process scenario.Sweep of the same
// batch.
func TestJobLifecycle(t *testing.T) {
	d := sharedDB(t)
	_, ts := newTestServer(t, Options{Workers: 2})
	specs := []scenario.Spec{testSpec("job-a"), testSpec("job-b"), testSpec("job-c")}

	data, err := json.Marshal(JobRequest{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("202 response Content-Type %q, want application/json", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.Total != len(specs) {
		t.Fatalf("unexpected submit status %+v", st)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for st.State != JobDone && st.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d)", st.ID, st.State, st.Done, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
	}
	if st.State != JobDone || st.Error != "" {
		t.Fatalf("job failed: %+v", st)
	}
	want, err := scenario.Sweep(d, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Reports) != len(want) {
		t.Fatalf("%d reports, want %d", len(st.Reports), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(st.Reports[i], want[i]) {
			t.Fatalf("job report %d differs from in-process sweep:\n got %+v\nwant %+v", i, st.Reports[i], want[i])
		}
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nosuch", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
}

// TestJobQueueBound pins the admission contract: a batch that can
// never fit the queue is a permanent 400; a batch that merely does not
// fit right now is a transient 503; neither is ever half-admitted.
func TestJobQueueBound(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	// Larger than the queue's total capacity: permanently unadmittable.
	specs := []scenario.Spec{testSpec("q-a"), testSpec("q-b"), testSpec("q-c")}
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: specs}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400: %s", code, raw)
	}
	if !strings.Contains(raw, "queue capacity") {
		t.Fatalf("unexpected rejection body: %s", raw)
	}

	// Queue currently occupied: transient, so 503. Occupancy is forced
	// directly (white box) to keep the test deterministic.
	srv.mu.Lock()
	srv.queued = 2
	srv.mu.Unlock()
	code, raw = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: specs[:1]}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d, want 503: %s", code, raw)
	}
	if !strings.Contains(raw, "queue full") {
		t.Fatalf("unexpected rejection body: %s", raw)
	}
	srv.mu.Lock()
	srv.queued = 0
	srv.mu.Unlock()
}

// TestCloseRejectsJobs checks graceful shutdown semantics on the job
// path: after Close, submissions are refused as unavailable.
func TestCloseRejectsJobs(t *testing.T) {
	srv, err := New(sharedDB(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	code, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: []scenario.Spec{testSpec("late")}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code, _ := postJSON(t, ts.URL+"/v1/savings", SavingsRequest{Apps: []string{"mcf"}, RM: "RM1"}, nil); code != http.StatusOK {
		t.Fatalf("savings status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`qosrmd_requests_total{path="/v1/savings"} 1`,
		"qosrmd_workers",
		"qosrmd_db_benchmarks 3",
		"qosrmd_scenario_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentClients is the stress test the race CI job leans on:
// many goroutines mix synchronous savings/scenario requests with async
// job submissions and polls against one server. Every response must be
// well-formed and every identical request must produce the identical
// result (the engine is deterministic and the database read-only).
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 128})
	spec := testSpec("stress")
	want, err := scenario.Run(sharedDB(t), &spec)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (c + r) % 3 {
				case 0:
					var got SavingsResponse
					code, raw := postJSONErr(ts.URL+"/v1/savings",
						SavingsRequest{Apps: []string{"mcf", "povray"}, RM: "RM3"}, &got)
					if code != http.StatusOK {
						errCh <- fmt.Errorf("savings status %d: %s", code, raw)
					} else if got.Saving == 0 && got.EnergyJ == 0 {
						errCh <- fmt.Errorf("empty savings response")
					}
				case 1:
					var got scenario.Report
					code, raw := postJSONErr(ts.URL+"/v1/scenarios", &spec, &got)
					if code != http.StatusOK {
						errCh <- fmt.Errorf("scenario status %d: %s", code, raw)
					} else if !reflect.DeepEqual(&got, want) {
						errCh <- fmt.Errorf("concurrent scenario result diverged")
					}
				default:
					var st JobStatus
					code, raw := postJSONErr(ts.URL+"/v1/jobs",
						JobRequest{Specs: []scenario.Spec{spec}}, &st)
					if code != http.StatusAccepted {
						errCh <- fmt.Errorf("job status %d: %s", code, raw)
						continue
					}
					for st.State != JobDone && st.State != JobFailed {
						time.Sleep(5 * time.Millisecond)
						if code := getJSONErr(ts.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
							errCh <- fmt.Errorf("job poll status %d", code)
							break
						}
					}
					if st.State == JobDone && !reflect.DeepEqual(st.Reports[0], want) {
						errCh <- fmt.Errorf("concurrent job result diverged")
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// postJSONErr / getJSONErr are the t-less helpers the stress test's
// goroutines use (testing.T is not goroutine-safe for Fatal).
func postJSONErr(url string, body any, out any) (int, string) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err.Error()
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return 0, err.Error()
		}
	}
	return resp.StatusCode, string(raw)
}

func getJSONErr(url string, out any) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return 0
	}
	return resp.StatusCode
}

func mustBench(t *testing.T, name string) *bench.Benchmark {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
