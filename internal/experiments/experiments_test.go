package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/workload"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

// sharedCtx builds one full-suite database for the package's tests.
func sharedCtx(t *testing.T) *Context {
	t.Helper()
	once.Do(func() {
		shared, dbErr = db.Build(bench.Suite(), db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	ctx := NewContext(shared)
	ctx.PerScenario = 2 // keep co-simulation sweeps quick
	return ctx
}

func TestRenderTableI(t *testing.T) {
	var buf bytes.Buffer
	RenderTableI(&buf)
	out := buf.String()
	for _, want := range []string{"issue width", "ROB", "LSQ", "2 MB × cores", "100 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestTableIIClassification(t *testing.T) {
	ctx := sharedCtx(t)
	rows, err := ctx.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("%d rows, want 27", len(rows))
	}
	match := 0
	for _, r := range rows {
		if r.Intended == r.Measured {
			match++
		}
	}
	// At the reduced test trace length a couple of borderline
	// applications may flip; the bulk must still match Table II.
	if match < 24 {
		t.Errorf("only %d/27 classifications match Table II", match)
	}
	var buf bytes.Buffer
	RenderTableII(&buf, rows)
	if !strings.Contains(buf.String(), "CS-PS:") {
		t.Error("render missing category lines")
	}
}

func TestFig1CellsAndWeights(t *testing.T) {
	ctx := sharedCtx(t)
	cells := ctx.Fig1()
	if len(cells) != 10 {
		t.Fatalf("%d cells, want 10", len(cells))
	}
	total := 0.0
	for _, c := range cells {
		if c.Scenario == 0 {
			t.Errorf("cell (%s,%s) not assigned a scenario", c.App1, c.App2)
		}
		if c.Trades[2] == "" {
			t.Errorf("cell (%s,%s) missing RM3 annotation", c.App1, c.App2)
		}
		total += c.Probability
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("cell probabilities sum to %.4f", total)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, cells)
	if !strings.Contains(buf.String(), "S1") {
		t.Error("fig1 render missing scenario weights")
	}
}

func TestFig2ScenarioShapes(t *testing.T) {
	ctx := sharedCtx(t)
	rows, err := ctx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byScenario := map[workload.Scenario]Fig2Row{}
	for _, r := range rows {
		byScenario[r.Scenario] = r
	}
	// Scenario 1: RM3 must clearly beat RM2 (the paper's headline).
	s1 := byScenario[workload.Scenario1]
	if s1.Savings[2] <= s1.Savings[1] {
		t.Errorf("S1: RM3 %.3f not above RM2 %.3f", s1.Savings[2], s1.Savings[1])
	}
	// Scenario 3: only RM3 is effective.
	s3 := byScenario[workload.Scenario3]
	if s3.Savings[2] < 0.02 {
		t.Errorf("S3: RM3 saving %.3f too small", s3.Savings[2])
	}
	if s3.Savings[0] > 0.02 || s3.Savings[1] > 0.02 {
		t.Errorf("S3: RM1/RM2 should be ineffective, got %.3f/%.3f", s3.Savings[0], s3.Savings[1])
	}
	// Scenario 4: nothing works (within noise).
	s4 := byScenario[workload.Scenario4]
	for k, s := range s4.Savings {
		if s > 0.05 {
			t.Errorf("S4: RM%d saving %.3f unexpectedly large", k+1, s)
		}
	}
	var buf bytes.Buffer
	RenderFig2(&buf, rows)
	if !strings.Contains(buf.String(), "2Core-S1") {
		t.Error("fig2 render incomplete")
	}
}

func TestFig4MatchesPaper(t *testing.T) {
	r := Fig4()
	if r.LM[0] != 3 { // S core
		t.Errorf("S-core LM %d, want 3", r.LM[0])
	}
	if r.LM[1] != 2 { // M core
		t.Errorf("M-core LM %d, want 2", r.LM[1])
	}
	var buf bytes.Buffer
	RenderFig4(&buf, r)
	if !strings.Contains(buf.String(), "LD3") {
		t.Error("fig4 render incomplete")
	}
}

func TestFig5EventPrefix(t *testing.T) {
	ctx := sharedCtx(t)
	r, err := ctx.Fig5(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 || len(r.Events) > 8 {
		t.Fatalf("%d events", len(r.Events))
	}
	prev := -1.0
	for _, e := range r.Events {
		if e.TimeNs <= prev {
			t.Fatal("events must advance in time")
		}
		prev = e.TimeNs
	}
	var buf bytes.Buffer
	RenderFig5(&buf, r)
	if !strings.Contains(buf.String(), "interval") {
		t.Error("fig5 render incomplete")
	}
}

func TestFig6SmallSweep(t *testing.T) {
	ctx := sharedCtx(t)
	res, err := ctx.Fig6Sizes([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*ctx.PerScenario {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Scenario-level shape: RM3 beats RM2 in S1 and dominates in S3.
	s1 := res.ScenarioAvg[workload.Scenario1]
	if s1[2] <= s1[1] {
		t.Errorf("S1 average: RM3 %.3f not above RM2 %.3f", s1[2], s1[1])
	}
	s3 := res.ScenarioAvg[workload.Scenario3]
	if s3[2] <= s3[1]+0.01 {
		t.Errorf("S3 average: RM3 %.3f not dominating RM2 %.3f", s3[2], s3[1])
	}
	if res.WeightedAvg[2] <= res.WeightedAvg[1] {
		t.Error("weighted average: RM3 must beat RM2")
	}
	var buf bytes.Buffer
	RenderFig6(&buf, res)
	if !strings.Contains(buf.String(), "Weighted average") {
		t.Error("fig6 render incomplete")
	}
}

func TestFig7ModelOrdering(t *testing.T) {
	ctx := sharedCtx(t)
	res, err := ctx.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	m1, m2, m3 := res.Models[0], res.Models[1], res.Models[2]
	if m1.Model.String() != "Model1" || m3.Model.String() != "Model3" {
		t.Fatal("model order wrong")
	}
	// The paper's central accuracy claim: the proposed model violates
	// less often and less severely than both baselines.
	if !(m3.Probability < m2.Probability && m2.Probability < m1.Probability) {
		t.Errorf("violation probabilities out of order: %.4f %.4f %.4f",
			m1.Probability, m2.Probability, m3.Probability)
	}
	if m3.EV >= m2.EV {
		t.Errorf("Model3 EV %.4f not below Model2 %.4f", m3.EV, m2.EV)
	}
	if m3.Std >= m2.Std {
		t.Errorf("Model3 σ %.4f not below Model2 %.4f", m3.Std, m2.Std)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, res)
	RenderFig8(&buf, res)
	if !strings.Contains(buf.String(), "P(violation)") {
		t.Error("fig7 render incomplete")
	}
}

func TestFig9ModelsApproachPerfect(t *testing.T) {
	ctx := sharedCtx(t)
	res, err := ctx.Fig9Sizes([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Model3's shortfall versus the perfect model must be the smallest.
	if !(res.GapToPerfect[2] < res.GapToPerfect[1] && res.GapToPerfect[2] < res.GapToPerfect[0]) {
		t.Errorf("Model3 gap %.4f not the smallest (M1 %.4f, M2 %.4f)",
			res.GapToPerfect[2], res.GapToPerfect[0], res.GapToPerfect[1])
	}
	var buf bytes.Buffer
	RenderFig9(&buf, res)
	if !strings.Contains(buf.String(), "Perfect") {
		t.Error("fig9 render incomplete")
	}
}

func TestScenarioWeightsNormalised(t *testing.T) {
	w := scenarioWeights()
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("weights sum to %.4f", total)
	}
}
