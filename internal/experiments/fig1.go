package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/bench"
	"qosrm/internal/workload"
)

// Fig1Cell is one mix of the Figure 1 trade-off matrix.
type Fig1Cell struct {
	App1, App2  bench.Category
	Probability float64
	Scenario    workload.Scenario
	// Trades summarises the resource trades available to RM1/RM2/RM3 in
	// this mix, in the paper's arrow notation.
	Trades [3]string
}

// Fig1 computes the upper-triangular mix matrix: the probability of each
// two-application mix (from the measured suite composition) and the
// scenario it belongs to.
func (c *Context) Fig1() []Fig1Cell {
	// The qualitative trade annotations of Figure 1, keyed by unordered
	// category pair (App1 ≤ App2 in Categories order).
	trades := map[[2]bench.Category][3]string{
		{bench.CSPS, bench.CSPS}: {"not effective", "f1↑ w1→w2 f2↓ (or sym.)", "c1↑f1↓ w1→w2 f2↓↓ c2↑ (or sym.)"},
		{bench.CSPS, bench.CSPI}: {"not effective", "f1↑ w1→w2 f2↓ (or sym.)", "f1↓ w1←w2 f2↑ c2↑-f2↓"},
		{bench.CSPS, bench.CIPS}: {"not effective", "w2→w1 f1↓", "w2→w1 f1↓↓ c1↑ c2↑-f2↓"},
		{bench.CSPS, bench.CIPI}: {"not effective", "w2→w1 f1↓", "w2→w1 f1↓↓ c1↑"},
		{bench.CSPI, bench.CSPI}: {"not effective", "f1↑ w1→w2 f2↓ (or sym.)", "f1↑ w1→w2 f2↓ (or sym.)"},
		{bench.CSPI, bench.CIPS}: {"not effective", "w2→w1 f1↓", "w2→w1 f1↓ c2↑-f2↓"},
		{bench.CSPI, bench.CIPI}: {"not effective", "w2→w1 f1↓", "w2→w1 f1↓"},
		{bench.CIPS, bench.CIPS}: {"not effective", "not effective", "c1↑-f1↓ c2↑-f2↓"},
		{bench.CIPS, bench.CIPI}: {"not effective", "not effective", "c1↑-f1↓ (limited)"},
		{bench.CIPI, bench.CIPI}: {"not effective", "not effective", "not effective"},
	}
	scenarioOf := func(a, b bench.Category) workload.Scenario {
		for _, s := range workload.Scenarios {
			for _, cell := range s.Cells() {
				if (cell.App1 == a && cell.App2 == b) || (cell.App1 == b && cell.App2 == a) {
					return s
				}
			}
		}
		return 0
	}
	var out []Fig1Cell
	for i, a := range bench.Categories {
		for _, b := range bench.Categories[i:] {
			out = append(out, Fig1Cell{
				App1:        a,
				App2:        b,
				Probability: workload.MixProbability(a, b),
				Scenario:    scenarioOf(a, b),
				Trades:      trades[[2]bench.Category{a, b}],
			})
		}
	}
	return out
}

// RenderFig1 prints the matrix with probabilities and scenario weights.
func RenderFig1(w io.Writer, cells []Fig1Cell) {
	fmt.Fprintln(w, "FIGURE 1: Potential resource trade-offs in two-application mixes")
	fmt.Fprintf(w, "%-7s %-7s %6s %-4s  %-16s %-26s %s\n",
		"App1", "App2", "prob", "scn", "RM1", "RM2", "RM3")
	for _, c := range cells {
		fmt.Fprintf(w, "%-7s %-7s %5.1f%% %-4s  %-16s %-26s %s\n",
			c.App1, c.App2, c.Probability*100, c.Scenario, c.Trades[0], c.Trades[1], c.Trades[2])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario weights (paper: S1 47%, S2 22.1%, S3 22.1%, S4 8.8%):")
	for _, s := range workload.Scenarios {
		fmt.Fprintf(w, "  %s: %5.1f%%\n", s, s.Weight()*100)
	}
}
