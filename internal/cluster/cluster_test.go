package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

const (
	tick    = 100 * time.Millisecond // simulated gossip interval
	suspect = 300 * time.Millisecond
)

// fakeClock is a hand-advanced time source shared by every node in a
// simulation, so suspicion timeouts are deterministic.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time { return c.now }

func newNode(clk *fakeClock, id, addr string, seeds ...string) *Membership {
	return New(Config{
		ID: id, Addr: addr, ParamsHash: "abc",
		Seeds:          seeds,
		SuspectTimeout: suspect,
		Clock:          clk.Now,
	})
}

func TestRefutationBumpsIncarnation(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a")
	if got := m.Incarnation(); got != 1 {
		t.Fatalf("fresh incarnation = %d, want 1", got)
	}
	// A rumor at a lower incarnation is stale: no refutation needed.
	if m.Merge([]Member{{ID: "a", State: StateSuspect, Incarnation: 0}}) {
		t.Fatal("stale rumor should not refute")
	}
	if got := m.Incarnation(); got != 1 {
		t.Fatalf("incarnation after stale rumor = %d, want 1", got)
	}
	// A rumor at the current incarnation must be refuted by bumping past it.
	if !m.Merge([]Member{{ID: "a", State: StateDead, Incarnation: 1}}) {
		t.Fatal("current-incarnation death rumor should refute")
	}
	if got := m.Incarnation(); got != 2 {
		t.Fatalf("incarnation after refutation = %d, want 2", got)
	}
	// A ghost of a previous boot asserting itself alive at a higher
	// incarnation: adopt it so our own claims stay freshest.
	m.Merge([]Member{{ID: "a", State: StateAlive, Incarnation: 7}})
	if got := m.Incarnation(); got != 7 {
		t.Fatalf("incarnation after ghost = %d, want 7", got)
	}
}

func TestMergePrecedence(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a")
	m.Merge([]Member{{ID: "b", Addr: "http://b", State: StateAlive, Incarnation: 3}})

	// Equal incarnation: the worse state wins.
	m.Merge([]Member{{ID: "b", State: StateSuspect, Incarnation: 3}})
	if _, s, _ := m.Counts(); s != 1 {
		t.Fatal("equal-incarnation suspect should have won over alive")
	}
	// Equal incarnation, better state: ignored.
	m.Merge([]Member{{ID: "b", State: StateAlive, Incarnation: 3}})
	if _, s, _ := m.Counts(); s != 1 {
		t.Fatal("equal-incarnation alive must not override suspect")
	}
	// Higher incarnation: the subject re-asserted itself; alive wins.
	m.Merge([]Member{{ID: "b", State: StateAlive, Incarnation: 4}})
	if a, _, _ := m.Counts(); a != 1 {
		t.Fatal("higher-incarnation alive should have revived b")
	}
	// Lower incarnation dead: stale, ignored.
	m.Merge([]Member{{ID: "b", State: StateDead, Incarnation: 2}})
	if a, _, _ := m.Counts(); a != 1 {
		t.Fatal("stale death rumor should be ignored")
	}
}

func TestParamsHashMismatchExcluded(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a")
	m.Merge([]Member{{ID: "b", Addr: "http://b", State: StateAlive, Incarnation: 1, ParamsHash: "zzz"}})
	if a, s, d := m.Counts(); a+s+d != 0 {
		t.Fatalf("version-skewed member tracked: %d/%d/%d", a, s, d)
	}
	if got := m.Rotation(); len(got) != 0 {
		t.Fatalf("version-skewed member in rotation: %v", got)
	}
}

func TestFailureDetection(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a")
	m.Ack("http://b", &Exchange{From: Member{ID: "b", Addr: "http://b", Incarnation: 1, State: StateAlive}})

	m.Fail("http://b")
	if _, s, _ := m.Counts(); s != 1 {
		t.Fatal("first missed probe should suspect")
	}
	// A failure inside the confirmation window must not kill yet.
	clk.now = clk.now.Add(suspect / 2)
	m.Fail("http://b")
	if _, _, d := m.Counts(); d != 0 {
		t.Fatal("confirmed dead before SuspectTimeout elapsed")
	}
	clk.now = clk.now.Add(suspect)
	m.Fail("http://b")
	if _, _, d := m.Counts(); d != 1 {
		t.Fatal("second missed probe after SuspectTimeout should confirm dead")
	}
	// Dead members leave the rotation but stay probed (rejoin detection)…
	if got := m.Rotation(); len(got) != 0 {
		t.Fatalf("dead member still in rotation: %v", got)
	}
	if got := m.ProbeTargets(); !reflect.DeepEqual(got, []string{"http://b"}) {
		t.Fatalf("dead member not probed: %v", got)
	}
	// …until DeadTTL prunes them.
	clk.now = clk.now.Add(41 * suspect)
	if got := m.ProbeTargets(); len(got) != 0 {
		t.Fatalf("dead member not pruned after DeadTTL: %v", got)
	}
}

func TestAckRevivesAndCleansGhosts(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a")
	m.Merge([]Member{{ID: "old", Addr: "http://b", State: StateAlive, Incarnation: 5}})
	// The address answers as a different node: the previous occupant is
	// a ghost of an earlier boot.
	m.Ack("http://b", &Exchange{From: Member{ID: "new", Addr: "http://b", Incarnation: 1, State: StateAlive}})
	a, _, d := m.Counts()
	if a != 1 || d != 1 {
		t.Fatalf("ghost cleanup: alive=%d dead=%d, want 1/1", a, d)
	}
	rot := m.Rotation()
	if len(rot) != 1 || rot[0].ID != "new" {
		t.Fatalf("rotation = %v, want just the new occupant", rot)
	}
	// Direct evidence overrides any rumor: a dead member that answers a
	// probe is alive again, even at the same incarnation.
	m.Merge([]Member{{ID: "new", State: StateDead, Incarnation: 1}})
	clk.now = clk.now.Add(2 * suspect) // age out the anti-flap window
	m.Merge([]Member{{ID: "new", State: StateDead, Incarnation: 1}})
	if _, _, d := m.Counts(); d != 2 {
		t.Fatal("rumor should have killed 'new' outside the anti-flap window")
	}
	m.Ack("http://b", &Exchange{From: Member{ID: "new", Addr: "http://b", Incarnation: 1, State: StateAlive}})
	if a, _, _ := m.Counts(); a != 1 {
		t.Fatal("direct ack should revive a dead member")
	}
}

func TestSeedsAndResolve(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	m := newNode(clk, "a", "http://a", "http://b/", "http://a", "http://c")
	// Own address is dropped from the seed list; the rest are probed and
	// appear in the rotation as unresolved placeholders.
	if got := m.ProbeTargets(); !reflect.DeepEqual(got, []string{"http://b", "http://c"}) {
		t.Fatalf("seed probe targets = %v", got)
	}
	rot := m.Rotation()
	if len(rot) != 2 || rot[0].ID != "" {
		t.Fatalf("unresolved seeds missing from rotation: %v", rot)
	}
	// The health poll resolves c's identity out of band.
	m.Resolve("http://c", "c")
	rot = m.Rotation()
	var ids []string
	for _, mm := range rot {
		ids = append(ids, mm.ID)
	}
	if !reflect.DeepEqual(ids, []string{"", "c"}) {
		t.Fatalf("rotation after resolve = %v", ids)
	}
	// A seed that answers as ourselves (symmetric seed lists) is
	// permanently skipped.
	m.Ack("http://b", &Exchange{From: m.Self()})
	if got := m.ProbeTargets(); !reflect.DeepEqual(got, []string{"http://c"}) {
		t.Fatalf("self seed still probed: %v", got)
	}
	if got := m.Rotation(); len(got) != 1 {
		t.Fatalf("self seed still in rotation: %v", got)
	}
}

// --- convergence property test -------------------------------------

// simNode is one in-process cluster node: a membership view plus an
// up/down flag the simulated transport honours.
type simNode struct {
	m    *Membership
	id   string
	addr string
	up   bool
}

// sim drives N nodes through synchronous gossip rounds over a fake
// transport with controllable partitions.
type sim struct {
	clk   *fakeClock
	nodes []*simNode
	byA   map[string]*simNode
	group map[string]int // addr → partition id; same id = reachable
}

func newSim(n int) *sim {
	s := &sim{clk: &fakeClock{now: time.Unix(0, 0)}, byA: map[string]*simNode{}, group: map[string]int{}}
	seed := "http://n0"
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("http://n%d", i)
		var seeds []string
		if addr != seed {
			seeds = []string{seed}
		}
		node := &simNode{id: fmt.Sprintf("id%d", i), addr: addr, up: true}
		node.m = newNode(s.clk, node.id, node.addr, seeds...)
		s.nodes = append(s.nodes, node)
		s.byA[addr] = node
	}
	return s
}

func (s *sim) connected(a, b string) bool { return s.group[a] == s.group[b] }

// round advances the clock one gossip interval and has every live node
// run one anti-entropy pass: push-pull with each of its probe targets,
// exactly the server's loop shape.
func (s *sim) round() {
	s.clk.now = s.clk.now.Add(tick)
	for _, n := range s.nodes {
		if !n.up {
			continue
		}
		for _, target := range n.m.ProbeTargets() {
			peer := s.byA[target]
			if peer == nil || !peer.up || !s.connected(n.addr, target) {
				n.m.Fail(target)
				continue
			}
			// POST /v1/cluster: the receiver merges the request, the
			// sender merges the response — both sides observe the other
			// directly.
			req := &Exchange{From: n.m.Self(), Members: n.m.Snapshot()}
			peer.m.Ack(req.From.Addr, req)
			resp := &Exchange{From: peer.m.Self(), Members: peer.m.Snapshot()}
			n.m.Ack(target, resp)
		}
	}
}

// liveIDs is the ground truth: IDs of nodes currently up.
func (s *sim) liveIDs() []string {
	var out []string
	for _, n := range s.nodes {
		if n.up {
			out = append(out, n.id)
		}
	}
	sort.Strings(out)
	return out
}

// converged reports whether every live node's Live() view equals the
// ground-truth live set.
func (s *sim) converged() bool {
	want := s.liveIDs()
	for _, n := range s.nodes {
		if !n.up {
			continue
		}
		if !reflect.DeepEqual(n.m.Live(), want) {
			return false
		}
	}
	return true
}

// waitConverged runs rounds until the views converge, bounding how
// many; the bound is generous because a suspect member needs
// SuspectTimeout to be confirmed dead.
func (s *sim) waitConverged(t *testing.T, what string, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if s.converged() {
			return
		}
		s.round()
	}
	if !s.converged() {
		want := s.liveIDs()
		for _, n := range s.nodes {
			if n.up {
				t.Logf("node %s view: %v (up=%v)", n.id, n.m.Live(), n.up)
			}
		}
		t.Fatalf("%s: views did not converge to %v", what, want)
	}
}

func TestMembershipConverges(t *testing.T) {
	s := newSim(5)
	s.waitConverged(t, "bootstrap", 10)

	// Kill one node: the rest must expel it within the suspect timeout
	// plus a confirmation round.
	s.nodes[2].up = false
	deadline := int(suspect/tick) + 3
	s.waitConverged(t, "single kill", deadline)

	// Rejoin with a fresh incarnation-1 membership (a process restart):
	// the cluster holds a dead tombstone at the same incarnation, so
	// re-entry exercises the refutation path.
	n := s.nodes[2]
	n.m = newNode(s.clk, n.id, n.addr, "http://n0")
	n.up = true
	s.waitConverged(t, "rejoin", 10)
}

func TestMembershipHealsPartition(t *testing.T) {
	s := newSim(4)
	s.waitConverged(t, "bootstrap", 10)

	// Split 2/2. Each side declares the other dead.
	s.group[s.nodes[2].addr] = 1
	s.group[s.nodes[3].addr] = 1
	for i := 0; i < int(suspect/tick)+3; i++ {
		s.round()
	}
	if a, _, d := s.nodes[0].m.Counts(); a != 1 || d != 2 {
		t.Fatalf("majority-side view during partition: alive=%d dead=%d, want 1/2", a, d)
	}

	// Heal. Dead members are still probed, so each side re-observes the
	// other directly and the death rumors are refuted.
	s.group = map[string]int{}
	s.waitConverged(t, "heal", 12)
}

func TestMembershipConvergesUnderChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := newSim(6)
	s.waitConverged(t, "bootstrap", 10)

	for step := 0; step < 30; step++ {
		switch op := rng.Intn(4); op {
		case 0: // kill a random live node (keep a majority up)
			if len(s.liveIDs()) > 3 {
				for _, i := range rng.Perm(len(s.nodes)) {
					if s.nodes[i].up {
						s.nodes[i].up = false
						break
					}
				}
			}
		case 1: // restart a random dead node with a fresh membership
			for _, i := range rng.Perm(len(s.nodes)) {
				if n := s.nodes[i]; !n.up {
					n.m = newNode(s.clk, n.id, n.addr, "http://n0")
					n.up = true
					break
				}
			}
		case 2: // partition a random node away for a few rounds
			addr := s.nodes[rng.Intn(len(s.nodes))].addr
			s.group[addr] = 1 + rng.Intn(2)
		case 3: // heal all partitions
			s.group = map[string]int{}
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			s.round()
		}
	}

	// Quiesce: heal everything, restart nothing further, and require
	// every surviving view to converge on the true live set.
	s.group = map[string]int{}
	for _, i := range rng.Perm(len(s.nodes)) {
		if n := s.nodes[i]; !n.up {
			n.m = newNode(s.clk, n.id, n.addr, "http://n0")
			n.up = true
			break // one rejoin rides along to keep the end state interesting
		}
	}
	s.waitConverged(t, "post-chaos", int(suspect/tick)+20)
}
