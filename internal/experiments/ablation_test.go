package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationIndexBitsDegradesMonotonically(t *testing.T) {
	ctx := sharedCtx(t)
	points, err := ctx.AblationIndexBits([]int{6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Narrower indices must not improve the estimate.
	if points[0].LMError < points[2].LMError {
		t.Errorf("6-bit error %.3f below 10-bit error %.3f",
			points[0].LMError, points[2].LMError)
	}
	for _, p := range points {
		if p.LMError < 0 {
			t.Fatal("negative error")
		}
	}
}

func TestAblationSampling(t *testing.T) {
	ctx := sharedCtx(t)
	points, err := ctx.AblationSampling([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].MissCurveError > 1e-9 {
		t.Errorf("full sampling must be exact, got %.4f", points[0].MissCurveError)
	}
	if points[1].MissCurveError <= 0 {
		t.Error("1/4 sampling should show some miss-curve error")
	}
	if points[1].LMError < points[0].LMError {
		t.Error("sampling must not improve LM estimates")
	}
}

func TestAblationAlphaTradesSavingsForViolations(t *testing.T) {
	ctx := sharedCtx(t)
	points, err := ctx.AblationAlpha([]float64{1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	// More slack → at least as many violations (they are permitted by
	// construction) and typically more savings.
	if points[1].Violation < points[0].Violation {
		t.Errorf("α=1.2 violation rate %.3f below α=1.0's %.3f",
			points[1].Violation, points[0].Violation)
	}
	if points[1].Saving < points[0].Saving-0.02 {
		t.Errorf("α=1.2 saving %.3f noticeably below α=1.0's %.3f",
			points[1].Saving, points[0].Saving)
	}
}

func TestAblationIntervalScalesRMCalls(t *testing.T) {
	ctx := sharedCtx(t)
	points, err := ctx.AblationInterval([]int64{50_000_000, 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].RMCalls <= points[1].RMCalls {
		t.Errorf("halving the interval must increase invocations: %d vs %d",
			points[0].RMCalls, points[1].RMCalls)
	}
}

func TestRenderAblation(t *testing.T) {
	ctx := sharedCtx(t)
	bits, err := ctx.AblationIndexBits([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	sampling, err := ctx.AblationSampling([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	alphas, err := ctx.AblationAlpha([]float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	intervals, err := ctx.AblationInterval([]int64{100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, bits, sampling, alphas, intervals)
	for _, want := range []string{"index width", "set sampling", "QoS relaxation", "interval length"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestValidateReplayIsolation(t *testing.T) {
	ctx := sharedCtx(t)
	rows, err := ctx.ValidateReplay("mcf", "xalancbmk", 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 partitions × 2 apps)", len(rows))
	}
	for _, r := range rows {
		// Way partitioning must isolate the applications: the shared
		// partitioned LLC behaves like each app's private slice.
		if r.RelError > 0.02 {
			t.Errorf("%s at %d ways: %.1f%% divergence between shared and solo",
				r.App, r.Ways, r.RelError*100)
		}
		if r.SharedMPKA <= 0 {
			t.Errorf("%s at %d ways: no misses observed", r.App, r.Ways)
		}
	}
	if _, err := ctx.ValidateReplay("nope", "mcf", 100); err == nil {
		t.Error("unknown application must error")
	}
}

func TestRenderValidate(t *testing.T) {
	ctx := sharedCtx(t)
	rows, err := ctx.ValidateReplay("mcf", "bwaves", 4000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderValidate(&buf, rows)
	if !strings.Contains(buf.String(), "VALIDATION") {
		t.Error("render incomplete")
	}
}

func TestAblationGlobalOpt(t *testing.T) {
	ctx := sharedCtx(t)
	points, err := ctx.AblationGlobalOpt()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d strategies", len(points))
	}
	// The optimal reduction can only match or beat the greedy heuristic
	// per interval; over a whole co-simulation small dynamic effects may
	// blur it, so allow a slim tolerance.
	if points[1].Saving > points[0].Saving+0.01 {
		t.Errorf("greedy (%.3f) beats optimal (%.3f) beyond tolerance",
			points[1].Saving, points[0].Saving)
	}
	var buf bytes.Buffer
	RenderGlobalOptAblation(&buf, points)
	if !strings.Contains(buf.String(), "greedy") {
		t.Error("render incomplete")
	}
}
